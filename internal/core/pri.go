package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/page"
)

// BackupKind identifies which of the §5.2.1 backup sources an entry points
// at (cf. Fig. 7: "page identifier or log sequence number of last page
// formatting or of in-log copy").
type BackupKind uint8

const (
	// BackupNone: no backup exists; the page cannot be recovered from a
	// single-page failure and the failure escalates.
	BackupNone BackupKind = iota
	// BackupFull: the page is covered by a full database backup; Loc is
	// the backup set identifier and the per-page location is derived
	// from the page ID inside the set. This is the range-compressed
	// common case ("a single entry should cover a large range of pages
	// ... e.g., a backup of the entire database", §5.2.2).
	BackupFull
	// BackupPage: an individual page backup copy; Loc is the backup
	// store slot holding the image (explicit copy after N updates, or a
	// pre-move image retained by page migration).
	BackupPage
	// BackupLogImage: Loc is the LSN of a TypeFullImage log record
	// holding a complete page image.
	BackupLogImage
	// BackupFormat: Loc is the LSN of the TypeFormat record written when
	// the page was allocated and formatted; redo of that single record
	// recreates the initial page (§5.2.1).
	BackupFormat
	// BackupDataSlot: Loc is a physical slot on the data device holding
	// the page's pre-move image — the implicit backup left behind by
	// copy-on-write page migration ("this means merely deferring space
	// reclamation", §5.2.1).
	BackupDataSlot
)

func (k BackupKind) String() string {
	switch k {
	case BackupNone:
		return "none"
	case BackupFull:
		return "full-backup"
	case BackupPage:
		return "page-backup"
	case BackupLogImage:
		return "log-image"
	case BackupFormat:
		return "format-record"
	case BackupDataSlot:
		return "pre-move-image"
	default:
		return fmt.Sprintf("backup-kind(%d)", uint8(k))
	}
}

// BackupRef locates the most recent backup of a page (Fig. 7, first row).
type BackupRef struct {
	Kind BackupKind
	// Loc is a backup-set ID, backup-store slot, or LSN, per Kind.
	Loc uint64
	// AsOf is the PageLSN captured in the backup: the per-page chain
	// walk stops here (§5.2.3).
	AsOf page.LSN
}

// Entry is the information the page recovery index tracks per page
// (Fig. 7).
type Entry struct {
	Backup BackupRef
	// LastLSN is the LSN of the most recent log record pertaining to the
	// page. Per §5.2.2 it is valid only while the page is not resident
	// in the buffer pool; while the page is dirty in the pool the entry
	// deliberately falls behind (Fig. 6's dashed line).
	LastLSN page.LSN
}

// entryBytes is the serialized size of one PRI record. The paper's §5.2.2
// bounds the worst case at "about 16 bytes per database page"; our entry
// packs kind+loc+asof+lastLSN into 25 bytes per *range*, so with range
// compression typical footprints stay far below the bound and the
// worst-case (singleton ranges with 16-byte amortization of lo==hi) is
// measured by experiment E7.
const entryBytes = 8 + 8 + 1 + 8 + 8 + 8 // lo,hi,kind,loc,asof,lastLSN

// rng is one range-compressed PRI record: all pages in [lo,hi] share the
// mapping.
type rng struct {
	lo, hi page.ID
	e      Entry
}

// PRI is the page recovery index: an ordered, range-compressed map from
// page identifiers to recovery information. The paper recommends an
// ordered index over a hash index precisely because ranges compress
// (§5.2.2); it also estimates the index small enough to "keep in memory at
// all times", which is what this implementation does. Durability comes
// from logging every update as a system transaction (§5.2.4) and restoring
// from checkpoint snapshots plus log replay (§5.2.5).
type PRI struct {
	mu     sync.RWMutex
	ranges []rng // sorted by lo, non-overlapping
}

// ErrNoEntry reports that the PRI holds no information for a page; per
// §5.2.3 the caller must then escalate to a media failure.
var ErrNoEntry = errors.New("pri: no entry for page")

// NewPRI returns an empty page recovery index.
func NewPRI() *PRI {
	return &PRI{}
}

// find returns the index of the range containing id, or -1.
func (p *PRI) find(id page.ID) int {
	i := sort.Search(len(p.ranges), func(i int) bool { return p.ranges[i].hi >= id })
	if i < len(p.ranges) && p.ranges[i].lo <= id && id <= p.ranges[i].hi {
		return i
	}
	return -1
}

// Get returns the entry covering page id.
func (p *PRI) Get(id page.ID) (Entry, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if i := p.find(id); i >= 0 {
		return p.ranges[i].e, nil
	}
	return Entry{}, fmt.Errorf("%w: %d", ErrNoEntry, id)
}

// SetRange installs one mapping for every page in [lo, hi], replacing any
// overlapped (parts of) existing ranges. Used when a full database backup
// completes: one entry then covers the whole database.
func (p *PRI) SetRange(lo, hi page.ID, e Entry) {
	if hi < lo {
		panic(fmt.Sprintf("pri: SetRange %d > %d", lo, hi))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.setRangeLocked(lo, hi, e)
}

// setRangeLocked replaces the span [lo, hi] with a single new range,
// keeping fragments of partially overlapped neighbors and re-merging
// ("coalescing") at the seams. It splices in place with binary search, so
// a singleton update costs O(log n) plus the tail move — the operation is
// on the write-back path of every page and must not scan the whole index.
func (p *PRI) setRangeLocked(lo, hi page.ID, e Entry) {
	// i = first range overlapping or after lo; j = first range fully
	// after hi. Ranges [i, j) are (partially) replaced.
	i := sort.Search(len(p.ranges), func(k int) bool { return p.ranges[k].hi >= lo })
	j := sort.Search(len(p.ranges), func(k int) bool { return p.ranges[k].lo > hi })
	repl := make([]rng, 0, 3)
	if i < j && p.ranges[i].lo < lo {
		repl = append(repl, rng{p.ranges[i].lo, lo - 1, p.ranges[i].e})
	}
	repl = append(repl, rng{lo, hi, e})
	if i < j && p.ranges[j-1].hi > hi {
		repl = append(repl, rng{hi + 1, p.ranges[j-1].hi, p.ranges[j-1].e})
	}
	p.splice(i, j, repl)
}

// splice replaces ranges[i:j] with repl and coalesces at both seams.
func (p *PRI) splice(i, j int, repl []rng) {
	// Merge repl internally first (adjacent equal entries).
	merged := repl[:0]
	for _, r := range repl {
		if n := len(merged); n > 0 && merged[n-1].hi+1 == r.lo && merged[n-1].e == r.e {
			merged[n-1].hi = r.hi
		} else {
			merged = append(merged, r)
		}
	}
	// Merge with the left neighbor.
	if i > 0 && len(merged) > 0 {
		left := p.ranges[i-1]
		if left.hi+1 == merged[0].lo && left.e == merged[0].e {
			merged[0].lo = left.lo
			i--
		}
	}
	// Merge with the right neighbor.
	if j < len(p.ranges) && len(merged) > 0 {
		right := p.ranges[j]
		last := len(merged) - 1
		if merged[last].hi+1 == right.lo && merged[last].e == right.e {
			merged[last].hi = right.hi
			j++
		}
	}
	switch {
	case len(merged) == j-i:
		copy(p.ranges[i:j], merged)
	case len(merged) < j-i:
		copy(p.ranges[i:], merged)
		copy(p.ranges[i+len(merged):], p.ranges[j:])
		p.ranges = p.ranges[:len(p.ranges)-(j-i)+len(merged)]
	default:
		extra := len(merged) - (j - i)
		p.ranges = append(p.ranges, make([]rng, extra)...)
		copy(p.ranges[j+extra:], p.ranges[j:])
		copy(p.ranges[i:], merged)
	}
}

// Set installs the mapping for a single page, splitting the covering range
// if necessary.
func (p *PRI) Set(id page.ID, e Entry) {
	p.SetRange(id, id, e)
}

// SetLastLSN records the most recent log record for page id after its
// dirty image has been written back to the database (§5.2.4), preserving
// the page's existing backup reference. It returns the updated entry.
//
// The update is monotone: a page's newest-record LSN never moves
// backwards, so a completed-write notification delivered late — batched
// write-back racing an eviction flush of the same page, or an old
// PRIUpdate record replayed after a newer one during restart analysis —
// cannot regress the index below history that is already durable (a
// regressed LastLSN would make a later single-page recovery stop its
// chain walk early and silently lose committed updates).
func (p *PRI) SetLastLSN(id page.ID, lsn page.LSN) (Entry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.find(id)
	if i < 0 {
		return Entry{}, fmt.Errorf("%w: %d", ErrNoEntry, id)
	}
	e := p.ranges[i].e
	if lsn > e.LastLSN {
		e.LastLSN = lsn
		p.setRangeLocked(id, id, e)
	}
	return e, nil
}

// SetBackup records a new backup for page id and returns the previous
// backup reference so the caller can free the superseded copy ("the page
// recovery index gives fast access to its identifier", §5.2.2). If the new
// backup is at least as recent as every update (ref.AsOf >= LastLSN), the
// LastLSN resets to the backup point: nothing needs replay.
func (p *PRI) SetBackup(id page.ID, ref BackupRef) (prev BackupRef, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.find(id)
	if i < 0 {
		return BackupRef{}, fmt.Errorf("%w: %d", ErrNoEntry, id)
	}
	e := p.ranges[i].e
	prev = e.Backup
	e.Backup = ref
	if ref.AsOf >= e.LastLSN {
		e.LastLSN = ref.AsOf
	}
	p.setRangeLocked(id, id, e)
	return prev, nil
}

// Drop removes any mapping for page id (page deallocated).
func (p *PRI) Drop(id page.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.find(id)
	if i < 0 {
		return
	}
	r := p.ranges[i]
	repl := make([]rng, 0, 2)
	if r.lo < id {
		repl = append(repl, rng{r.lo, id - 1, r.e})
	}
	if r.hi > id {
		repl = append(repl, rng{id + 1, r.hi, r.e})
	}
	p.splice(i, i+1, repl)
}

// RangeCount returns the number of range-compressed records.
func (p *PRI) RangeCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.ranges)
}

// PageCount returns the number of pages covered.
func (p *PRI) PageCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, r := range p.ranges {
		n += int(r.hi - r.lo + 1)
	}
	return n
}

// SizeBytes estimates the serialized index size — the quantity §5.2.2
// bounds at "about 16 bytes per database page or about 1‰ of the database
// size" in the worst case.
func (p *PRI) SizeBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.ranges) * entryBytes
}

// CompactSizeBytes estimates the index size under a production B-tree
// encoding with prefix-truncated keys: a singleton entry needs the paper's
// ~16 bytes (backup locator + LSN, the page-ID key amortized into the
// B-tree separator structure), and a range entry needs 8 more for the
// second bound. Experiment E7 reports both this and the literal in-memory
// footprint SizeBytes.
func (p *PRI) CompactSizeBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	total := 0
	for _, r := range p.ranges {
		if r.lo == r.hi {
			total += 16
		} else {
			total += 24
		}
	}
	return total
}

// Snapshot serializes the index for a checkpoint (§5.2.6).
func (p *PRI) Snapshot() []byte {
	p.mu.RLock()
	defer p.mu.RUnlock()
	buf := make([]byte, 8, 8+len(p.ranges)*entryBytes)
	binary.LittleEndian.PutUint64(buf, uint64(len(p.ranges)))
	var tmp [entryBytes]byte
	for _, r := range p.ranges {
		binary.LittleEndian.PutUint64(tmp[0:], uint64(r.lo))
		binary.LittleEndian.PutUint64(tmp[8:], uint64(r.hi))
		tmp[16] = byte(r.e.Backup.Kind)
		binary.LittleEndian.PutUint64(tmp[17:], r.e.Backup.Loc)
		binary.LittleEndian.PutUint64(tmp[25:], uint64(r.e.Backup.AsOf))
		binary.LittleEndian.PutUint64(tmp[33:], uint64(r.e.LastLSN))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// ErrBadSnapshot reports a corrupt PRI snapshot.
var ErrBadSnapshot = errors.New("pri: corrupt snapshot")

// RestorePRI rebuilds a PRI from a Snapshot.
func RestorePRI(snap []byte) (*PRI, error) {
	if len(snap) < 8 {
		return nil, ErrBadSnapshot
	}
	n := int(binary.LittleEndian.Uint64(snap))
	if len(snap) != 8+n*entryBytes {
		return nil, fmt.Errorf("%w: %d ranges, %d bytes", ErrBadSnapshot, n, len(snap))
	}
	p := NewPRI()
	pos := 8
	for i := 0; i < n; i++ {
		r := rng{
			lo: page.ID(binary.LittleEndian.Uint64(snap[pos:])),
			hi: page.ID(binary.LittleEndian.Uint64(snap[pos+8:])),
			e: Entry{
				Backup: BackupRef{
					Kind: BackupKind(snap[pos+16]),
					Loc:  binary.LittleEndian.Uint64(snap[pos+17:]),
					AsOf: page.LSN(binary.LittleEndian.Uint64(snap[pos+25:])),
				},
				LastLSN: page.LSN(binary.LittleEndian.Uint64(snap[pos+33:])),
			},
		}
		if len(p.ranges) > 0 && r.lo <= p.ranges[len(p.ranges)-1].hi {
			return nil, fmt.Errorf("%w: overlapping ranges", ErrBadSnapshot)
		}
		p.ranges = append(p.ranges, r)
		pos += entryBytes
	}
	return p, nil
}

// Validate checks the structural invariants: sorted, non-overlapping,
// non-empty ranges. Intended for tests and defensive checks.
func (p *PRI) Validate() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i, r := range p.ranges {
		if r.hi < r.lo {
			return fmt.Errorf("pri: inverted range [%d,%d]", r.lo, r.hi)
		}
		if i > 0 && r.lo <= p.ranges[i-1].hi {
			return fmt.Errorf("pri: overlap between [%d,%d] and [%d,%d]",
				p.ranges[i-1].lo, p.ranges[i-1].hi, r.lo, r.hi)
		}
	}
	return nil
}

// ForEachRange visits every range in order; used by reporting code.
func (p *PRI) ForEachRange(fn func(lo, hi page.ID, e Entry) bool) {
	p.mu.RLock()
	ranges := append([]rng(nil), p.ranges...)
	p.mu.RUnlock()
	for _, r := range ranges {
		if !fn(r.lo, r.hi, r.e) {
			return
		}
	}
}
