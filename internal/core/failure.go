// Package core implements the paper's primary contribution: the definition
// of single-page failures as a fourth failure class, the page recovery
// index that makes their repair efficient, and the single-page recovery
// procedure itself (paper §3.2, §5.2).
package core

import "fmt"

// FailureClass enumerates the four database failure classes of the paper's
// taxonomy (§3). The first three are the traditional classes framing 30+
// years of recovery research; the fourth is the paper's contribution.
type FailureClass int

const (
	// TransactionFailure: a single transaction fails and must roll back
	// to preserve all-or-nothing semantics; other transactions keep
	// running (§3.1). Typical recovery time: under a second.
	TransactionFailure FailureClass = iota
	// MediaFailure: an entire storage device fails (the classic example
	// is a head crash); all transactions touching its data fail, and
	// recovery restores a backup plus the log — minutes to hours (§3.1).
	MediaFailure
	// SystemFailure: the server (and perhaps the OS) crashes; restart
	// recovery runs log analysis, redo, and undo — about a minute (§3.1).
	SystemFailure
	// SinglePageFailure: "all failures to read a data page correctly and
	// with plausible contents despite all correction attempts in lower
	// system levels" (§3.2). Less severe than a media failure: most of
	// the device remains intact, and with the recovery technique of
	// §5.2 no transaction needs to terminate — affected transactions
	// merely wait about a second.
	SinglePageFailure
)

func (c FailureClass) String() string {
	switch c {
	case TransactionFailure:
		return "transaction failure"
	case MediaFailure:
		return "media failure"
	case SystemFailure:
		return "system failure"
	case SinglePageFailure:
		return "single-page failure"
	default:
		return fmt.Sprintf("failure-class(%d)", int(c))
	}
}

// Scope describes the blast radius of a failure, quantifying the paper's
// Figure 1: without single-page failure support, one bad page escalates to
// a media failure, and on single-device systems further to a system
// failure.
type Scope struct {
	Class             FailureClass
	PagesLost         int  // pages whose contents must be recovered
	TransactionsAbort int  // transactions forcibly terminated
	DeviceReplaced    bool // hardware replacement required
	FullRestartNeeded bool // the whole system restarts
}

// EscalationChain returns the Figure 1 escalation for a single bad page on
// a database of dbPages pages with activeTxns running transactions, under
// three regimes: single-page failure supported, media failure handling, and
// single-device system failure.
func EscalationChain(dbPages, activeTxns int) [3]Scope {
	return [3]Scope{
		{
			Class:     SinglePageFailure,
			PagesLost: 1,
			// §5.2.7: "it is not required to terminate the affected
			// transaction."
			TransactionsAbort: 0,
		},
		{
			Class:             MediaFailure,
			PagesLost:         dbPages,
			TransactionsAbort: activeTxns,
			DeviceReplaced:    true,
		},
		{
			Class:             SystemFailure,
			PagesLost:         dbPages,
			TransactionsAbort: activeTxns,
			DeviceReplaced:    true,
			FullRestartNeeded: true,
		},
	}
}
