package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/iosim"
	"repro/internal/page"
	"repro/internal/wal"
)

// rawApplier applies test log records whose payload is simply the page's
// new payload bytes.
type rawApplier struct{}

func (rawApplier) ApplyRedo(rec *wal.Record, pg *page.Page) error {
	return pg.SetPayload(rec.Payload)
}

// mapBackups is a BackupSource backed by a map.
type mapBackups struct {
	images map[uint64]*page.Page
}

func (b *mapBackups) FetchBackup(ref BackupRef, pageID page.ID) (*page.Page, error) {
	img, ok := b.images[ref.Loc]
	if !ok {
		return nil, fmt.Errorf("no backup at loc %d", ref.Loc)
	}
	if img.ID() != pageID {
		return nil, fmt.Errorf("backup holds page %d, want %d", img.ID(), pageID)
	}
	return img.Clone(), nil
}

// buildHistory creates a page, a backup of its state after backupAfter
// updates, and then further updates, returning everything a recoverer
// needs. Total updates = backupAfter + tailUpdates.
func buildHistory(t *testing.T, log *wal.Manager, pid page.ID, backupAfter, tailUpdates int) (*PRI, *mapBackups, *page.Page) {
	t.Helper()
	pg := page.New(pid, page.TypeRaw, 512)
	update := func(i int) {
		payload := []byte(fmt.Sprintf("state-%04d", i))
		lsn := log.Append(&wal.Record{
			Type: wal.TypeUpdate, Txn: 1, PageID: pid,
			PagePrevLSN: pg.LSN(), Payload: payload,
		})
		if err := pg.SetPayload(payload); err != nil {
			t.Fatal(err)
		}
		pg.SetLSN(lsn)
	}
	for i := 0; i < backupAfter; i++ {
		update(i)
	}
	backups := &mapBackups{images: map[uint64]*page.Page{100: pg.Clone()}}
	ref := BackupRef{Kind: BackupPage, Loc: 100, AsOf: pg.LSN()}
	for i := 0; i < tailUpdates; i++ {
		update(backupAfter + i)
	}
	pri := NewPRI()
	pri.Set(pid, Entry{Backup: ref, LastLSN: pg.LSN()})
	return pri, backups, pg
}

func TestRecoverPageReplaysChain(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pri, backups, want := buildHistory(t, log, 7, 3, 10)
	r := NewRecoverer(log, pri, backups, rawApplier{})
	got, rep, err := r.RecoverPage(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN() != want.LSN() {
		t.Errorf("recovered LSN %d, want %d", got.LSN(), want.LSN())
	}
	if string(got.Payload()) != string(want.Payload()) {
		t.Errorf("recovered payload %q, want %q", got.Payload(), want.Payload())
	}
	if rep.RecordsApplied != 10 {
		t.Errorf("applied %d records, want 10 (updates since backup)", rep.RecordsApplied)
	}
	if rep.LogReads != 10 {
		t.Errorf("log reads = %d, want 10", rep.LogReads)
	}
	if rep.BackupKind != BackupPage {
		t.Errorf("backup kind = %v", rep.BackupKind)
	}
	s := r.Stats()
	if s.Recoveries != 1 || s.RecordsApplied != 10 || s.Escalations != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRecoverPageNoUpdatesSinceBackup(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pri, backups, want := buildHistory(t, log, 7, 5, 0)
	r := NewRecoverer(log, pri, backups, rawApplier{})
	got, rep, err := r.RecoverPage(7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsApplied != 0 {
		t.Errorf("applied %d, want 0 (backup is current)", rep.RecordsApplied)
	}
	if got.LSN() != want.LSN() {
		t.Errorf("LSN %d, want %d", got.LSN(), want.LSN())
	}
}

func TestRecoverPageEscalatesWithoutEntry(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	r := NewRecoverer(log, NewPRI(), &mapBackups{}, rawApplier{})
	_, _, err := r.RecoverPage(42)
	if !errors.Is(err, ErrEscalate) {
		t.Fatalf("want ErrEscalate, got %v", err)
	}
	if r.Stats().Escalations != 1 {
		t.Error("escalation not counted")
	}
}

func TestRecoverPageEscalatesWithoutBackup(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pri := NewPRI()
	pri.Set(5, Entry{Backup: BackupRef{Kind: BackupNone}, LastLSN: 10})
	r := NewRecoverer(log, pri, &mapBackups{}, rawApplier{})
	if _, _, err := r.RecoverPage(5); !errors.Is(err, ErrEscalate) {
		t.Fatalf("want ErrEscalate, got %v", err)
	}
}

func TestRecoverPageEscalatesOnMissingBackupImage(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pri := NewPRI()
	pri.Set(5, Entry{Backup: BackupRef{Kind: BackupPage, Loc: 1, AsOf: 10}, LastLSN: 10})
	r := NewRecoverer(log, pri, &mapBackups{images: map[uint64]*page.Page{}}, rawApplier{})
	if _, _, err := r.RecoverPage(5); !errors.Is(err, ErrEscalate) {
		t.Fatalf("want ErrEscalate, got %v", err)
	}
}

func TestRecoverPageEscalatesOnStaleBackupLSN(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pg := page.New(5, page.TypeRaw, 512)
	pg.SetLSN(99) // does not match ref.AsOf below
	pri := NewPRI()
	pri.Set(5, Entry{Backup: BackupRef{Kind: BackupPage, Loc: 1, AsOf: 10}, LastLSN: 99})
	r := NewRecoverer(log, pri, &mapBackups{images: map[uint64]*page.Page{1: pg}}, rawApplier{})
	if _, _, err := r.RecoverPage(5); !errors.Is(err, ErrEscalate) {
		t.Fatalf("want ErrEscalate, got %v", err)
	}
}

func TestRecoverPageEscalatesOnBrokenChain(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pri, backups, _ := buildHistory(t, log, 7, 2, 3)
	// Corrupt the PRI's LastLSN to point at a record of another page.
	noise := log.Append(&wal.Record{Type: wal.TypeUpdate, Txn: 9, PageID: 999})
	if _, err := pri.SetLastLSN(7, noise); err != nil {
		t.Fatal(err)
	}
	r := NewRecoverer(log, pri, backups, rawApplier{})
	if _, _, err := r.RecoverPage(7); !errors.Is(err, ErrEscalate) {
		t.Fatalf("want ErrEscalate, got %v", err)
	}
}

func TestRecoverPageDefensiveSequenceCheck(t *testing.T) {
	// Build a chain whose PagePrevLSN pointers skip a record: the §5.1.4
	// defensive check must refuse to apply out-of-sequence redo.
	log := wal.NewManager(iosim.Instant)
	const pid page.ID = 3
	pg := page.New(pid, page.TypeRaw, 512)
	backups := &mapBackups{images: map[uint64]*page.Page{1: pg.Clone()}}
	ref := BackupRef{Kind: BackupPage, Loc: 1, AsOf: pg.LSN()}
	l1 := log.Append(&wal.Record{Type: wal.TypeUpdate, Txn: 1, PageID: pid, PagePrevLSN: pg.LSN(), Payload: []byte("a")})
	// Second record lies about its predecessor (claims l1+1000).
	l2 := log.Append(&wal.Record{Type: wal.TypeUpdate, Txn: 1, PageID: pid, PagePrevLSN: l1 + 1000, Payload: []byte("b")})
	_ = l1
	pri := NewPRI()
	pri.Set(pid, Entry{Backup: ref, LastLSN: l2})
	r := NewRecoverer(log, pri, backups, rawApplier{})
	_, _, err := r.RecoverPage(pid)
	if !errors.Is(err, ErrEscalate) {
		t.Fatalf("out-of-sequence chain not detected: %v", err)
	}
}

func TestRecoverPageSimulatedIOCharged(t *testing.T) {
	log := wal.NewManager(iosim.HDD)
	pri, backups, _ := buildHistory(t, log, 7, 1, 24)
	r := NewRecoverer(log, pri, backups, rawApplier{})
	_, rep, err := r.RecoverPage(7)
	if err != nil {
		t.Fatal(err)
	}
	// ~24 random log reads on an 8 ms disk: on the order of 0.2 s —
	// "dozens of I/Os ... perhaps 1 s" (§6).
	if rep.SimulatedIO <= 0 {
		t.Error("no simulated I/O charged")
	}
	if rep.SimulatedIO.Seconds() > 2 {
		t.Errorf("simulated I/O %v exceeds the paper's ~1 s expectation", rep.SimulatedIO)
	}
}

func TestRecoverLongChain(t *testing.T) {
	log := wal.NewManager(iosim.Instant)
	pri, backups, want := buildHistory(t, log, 7, 0, 500)
	r := NewRecoverer(log, pri, backups, rawApplier{})
	got, rep, err := r.RecoverPage(7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsApplied != 500 {
		t.Errorf("applied %d, want 500", rep.RecordsApplied)
	}
	if string(got.Payload()) != string(want.Payload()) {
		t.Error("long-chain recovery produced wrong contents")
	}
}
