package spf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/page"
)

// TestConcurrentTreeOpsWithInjectedPageFaults is the -race stress for the
// latch-coupled B-tree over the full engine: concurrent Insert, Update,
// Delete, Get, and Scan traffic from many goroutines while an injector
// corrupts the stored images of both interior and leaf pages. Every fault
// must be detected by the validating read path mid-descent and repaired
// through single-page recovery while other descents proceed; at the end,
// every model key must read back correctly, every injected page must pass a
// validating re-fetch, the tree must verify clean, and no operation may
// have held more than two page latches.
func TestConcurrentTreeOpsWithInjectedPageFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	btree.ResetMaxLatchDepth()
	db, err := Open(Options{PageSize: 1024, DataSlots: 1 << 14, PoolFrames: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.CreateIndex("stress")
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 6
		keys    = 250 // per writer
		ops     = 1200
	)
	wkey := func(w, i int) []byte { return []byte(fmt.Sprintf("w%02d-%05d", w, i)) }

	tx := db.Begin()
	for w := 0; w < writers; w++ {
		for i := 0; i < keys; i += 2 {
			if err := ix.Insert(tx, wkey(w, i), []byte("seed")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	models := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + w)))
			model := make(map[string]string, keys)
			for i := 0; i < keys; i += 2 {
				model[string(wkey(w, i))] = "seed"
			}
			models[w] = model
			tx := db.Begin()
			for op := 0; op < ops; op++ {
				i := rng.Intn(keys)
				k := wkey(w, i)
				v := fmt.Sprintf("w%d-%d", w, op)
				switch rng.Intn(5) {
				case 0, 1: // upsert
					var uerr error
					if _, ok := model[string(k)]; ok {
						uerr = ix.Update(tx, k, []byte(v))
					} else {
						uerr = ix.Insert(tx, k, []byte(v))
					}
					if uerr != nil {
						errs <- fmt.Errorf("worker %d upsert %q: %w", w, k, uerr)
						return
					}
					model[string(k)] = v
				case 2: // delete
					if _, ok := model[string(k)]; ok {
						if err := ix.Delete(tx, k); err != nil {
							errs <- fmt.Errorf("worker %d delete %q: %w", w, k, err)
							return
						}
						delete(model, string(k))
					}
				default:
					got, err := ix.Get(k)
					want, ok := model[string(k)]
					if ok != (err == nil) {
						errs <- fmt.Errorf("worker %d get %q: %v, model present=%v", w, k, err, ok)
						return
					}
					if err == nil && string(got) != want {
						errs <- fmt.Errorf("worker %d get %q = %q, want %q", w, k, got, want)
						return
					}
				}
			}
			if err := db.Commit(tx); err != nil {
				errs <- fmt.Errorf("worker %d commit: %w", w, err)
			}
		}(w)
	}

	// A scanner checks global key order continuously.
	done := make(chan struct{})
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var prev []byte
			err := ix.Scan(nil, nil, func(e Entry) bool {
				if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
					return false
				}
				prev = e.Key
				return true
			})
			if err != nil {
				errs <- fmt.Errorf("scan: %w", err)
				return
			}
		}
	}()

	// The injector corrupts stored images of live B-tree pages — leaves
	// AND interior nodes — while traffic runs, explicitly targeting one of
	// each class per round so coverage cannot depend on luck. A page that
	// is pinned this instant is skipped (the next round finds another
	// victim). The injector keeps going until both classes have minimum
	// coverage, even if the workers drain first: the final revalidation
	// pass below still drives each late injection through detection and
	// repair.
	var injectedLeaves, injectedInterior []PageID
	injectorWG := make(chan struct{})
	go func() {
		defer close(injectorWG)
		rng := rand.New(rand.NewSource(4242))
		classify := func() (leaves, interior []PageID) {
			for _, id := range db.Pages() {
				h, err := db.pool.Fetch(id)
				if err != nil {
					continue // an earlier injection being repaired right now
				}
				h.RLock()
				typ := h.Page().Type()
				payload := h.Page().Payload()
				var level uint16
				if typ == page.TypeBTree && len(payload) >= 2 {
					level = binary.LittleEndian.Uint16(payload)
				}
				h.RUnlock()
				h.Release()
				if typ != page.TypeBTree {
					continue
				}
				if level == 0 {
					leaves = append(leaves, id)
				} else {
					interior = append(interior, id)
				}
			}
			return leaves, interior
		}
		inject := func(candidates []PageID) (PageID, bool) {
			if len(candidates) == 0 {
				return 0, false
			}
			id := candidates[rng.Intn(len(candidates))]
			if err := db.EvictPage(id); err != nil {
				return 0, false // pinned by a concurrent descent
			}
			if err := db.CorruptPage(id); err != nil {
				return 0, false
			}
			return id, true
		}
		for round := 0; round < 2000; round++ {
			trafficDone := false
			select {
			case <-done:
				trafficDone = true
			default:
			}
			if trafficDone && len(injectedLeaves) >= 5 && len(injectedInterior) >= 2 {
				return
			}
			leaves, interior := classify()
			if id, ok := inject(leaves); ok {
				injectedLeaves = append(injectedLeaves, id)
			}
			if id, ok := inject(interior); ok {
				injectedInterior = append(injectedInterior, id)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(done)
	scanWG.Wait()
	<-injectorWG
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if len(injectedLeaves) == 0 || len(injectedInterior) == 0 {
		t.Fatalf("injector coverage too thin: %d leaf, %d interior faults",
			len(injectedLeaves), len(injectedInterior))
	}
	// Every injected page must come back clean through the validating read
	// path (repairing any corruption foreground traffic did not already
	// trip over and heal).
	for _, id := range append(append([]PageID(nil), injectedLeaves...), injectedInterior...) {
		for attempt := 0; ; attempt++ {
			err := db.EvictPage(id)
			if err == nil {
				break
			}
			if !errors.Is(err, buffer.ErrPinned) || attempt > 100 {
				t.Fatalf("evicting injected page %d: %v", id, err)
			}
			time.Sleep(time.Millisecond)
		}
		h, err := db.pool.Fetch(id)
		if err != nil {
			t.Fatalf("injected page %d not repaired: %v", id, err)
		}
		h.Release()
	}

	stats := db.Stats()
	if stats.Pool.ValidationFailures == 0 {
		t.Error("no fault was ever detected on the read path")
	}
	if stats.Pool.Recoveries == 0 {
		t.Error("no single-page recovery ran")
	}
	if stats.Pool.Escalations != 0 {
		t.Errorf("%d single-page failures escalated to media failures", stats.Pool.Escalations)
	}

	for w := 0; w < writers; w++ {
		for k, want := range models[w] {
			got, err := ix.Get([]byte(k))
			if err != nil || string(got) != want {
				t.Fatalf("final get %q = %q, %v (want %q)", k, got, err, want)
			}
		}
	}
	viols, err := ix.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("invariant violation after stress: %s", v)
	}
	if d := btree.MaxLatchDepth(); d > 2 {
		t.Errorf("latch-depth high-water mark = %d, want <= 2", d)
	} else if d != 2 {
		t.Errorf("latch-depth high-water mark = %d, coupling never paired latches?", d)
	}
	t.Logf("injected: %d leaf + %d interior; detected=%d recovered=%d",
		len(injectedLeaves), len(injectedInterior),
		stats.Pool.ValidationFailures, stats.Pool.Recoveries)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
