package spf

import (
	"bytes"
	"errors"
	"testing"
)

// restartOptions slows the background drain (one worker) so on-demand
// behavior is observable.
func restartOptions() Options {
	o := testOptions()
	o.Restore.Workers = 1
	return o
}

// dirtyCrash loads n keys, checkpoints, then commits a second batch of
// extra inserts plus spread updates that stay dirty in the pool, and
// crashes. Every committed value was acked, so restart must replay all of
// it. Returns the total key count (values of key i are v(i) throughout).
func dirtyCrash(t *testing.T, db *DB, n, extra int) int {
	t.Helper()
	ix := loadIndex(t, db, "t", n)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := n; i < n+extra; i++ {
		if err := ix.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		if err := ix.Update(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	return n + extra
}

// TestInstantRestartServesAckedCommitsOnDemand: Restart returns before
// bulk redo completes; the first read of every page observes all acked
// commits, paying only that page's chain replay.
func TestInstantRestartServesAckedCommitsOnDemand(t *testing.T) {
	db := openTestDB(t, restartOptions())
	total := dirtyCrash(t, db, 1500, 300)

	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ndb.Close()
	if !rep.OnDemand {
		t.Fatal("restart did not take the on-demand path")
	}
	if rep.Prep.PagesMarked == 0 {
		t.Fatal("prep marked no pages despite a dirty crash")
	}
	if rep.Redo.PagesRead != 0 || rep.Redo.RecordsApplied != 0 {
		t.Fatalf("synchronous redo ran on the on-demand path: %+v", rep.Redo)
	}
	pendingAtReturn := ndb.RestoreStats().Pending

	// First reads — before the drain barrier — must observe every acked
	// commit (on tiny test databases the backlog can drain before we
	// look; BenchmarkE26 asserts the latency gap quantitatively).
	ix, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i += 7 {
		if got, err := ix.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d during redo drain: %q, %v", i, got, err)
		}
	}
	ndb.DrainRestore()
	expectValues(t, ix, total)
	if viols, err := ix.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify after restart: %v %v", viols, err)
	}
	rs := ndb.RestartRedoStats()
	if rs.Marked == 0 || rs.Pending != 0 {
		t.Fatalf("redo stats after drain: %+v", rs)
	}
	if rs.FastRedos == 0 {
		t.Fatalf("no page was redone from its on-disk image: %+v", rs)
	}
	t.Logf("prep=%+v pendingAtReturn=%d redo=%+v", rep.Prep, pendingAtReturn, rs)
}

// TestRestartSynchronousPathStillWorks pins the pre-instant behavior
// behind Options.Restore.Disabled: redo is a forward log scan completing
// before Restart returns.
func TestRestartSynchronousPathStillWorks(t *testing.T) {
	opts := testOptions()
	opts.Restore.Disabled = true
	db := openTestDB(t, opts)
	total := dirtyCrash(t, db, 800, 200)

	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ndb.Close()
	if rep.OnDemand {
		t.Fatal("disabled restore still took the on-demand path")
	}
	if rep.Redo.RecordsApplied == 0 {
		t.Fatal("synchronous redo applied nothing")
	}
	ix, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	expectValues(t, ix, total)
}

// TestNestedPageFailureDuringRestartRedo: a persistent page fault
// injected between crash and restart means the on-disk image cannot serve
// as the redo base — single-page recovery from the page's real backup
// must run inside system recovery, transparently.
func TestNestedPageFailureDuringRestartRedo(t *testing.T) {
	opts := restartOptions()
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 1200)
	// A full backup gives every page a registered fallback source.
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 1200; i += 3 {
		if err := ix.Update(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	// Persistent damage to every stored image: every marked page's
	// image-based fast path must fail and fall back to full single-page
	// recovery — the nested-failure scenario.
	for _, id := range db.Pages() {
		if err := db.CorruptPage(id); err != nil {
			t.Fatal(err)
		}
	}

	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart over corrupted device: %v", err)
	}
	defer ndb.Close()
	if !rep.OnDemand || rep.Prep.PagesMarked == 0 {
		t.Fatalf("unexpected restart shape: %+v", rep)
	}
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	ndb.DrainRestore()
	expectValues(t, ix2, 1200)
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify: %v %v", viols, err)
	}
	rs := ndb.RestartRedoStats()
	if rs.Fallbacks == 0 {
		t.Fatalf("no nested single-page recovery ran: %+v", rs)
	}
	if st := ndb.Stats(); st.Recovery.Recoveries == 0 {
		t.Fatalf("recoverer idle despite corrupted images: %+v", st.Recovery)
	}
	t.Logf("redo stats with corrupted device: %+v", rs)
}

// TestCrashDuringMediaRestoreThenRestart: a system failure in the middle
// of an instant-restore backlog must not lose an acked commit — restart
// recovery runs over the half-restored device and every page self-heals
// on read from its backup plus chain.
func TestCrashDuringMediaRestoreThenRestart(t *testing.T) {
	opts := restartOptions()
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 1000)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 1000; i < 1200; i++ {
		if err := ix.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.FailDevice()

	ndb, _, err := db.RecoverMedia()
	if err != nil {
		t.Fatalf("media recovery: %v", err)
	}
	// Crash while the restore backlog is (very likely still) draining.
	t.Logf("pending at crash: %d", ndb.RestoreStats().Pending)
	ndb.Crash()

	ndb2, rep, err := ndb.Restart()
	if err != nil {
		t.Fatalf("restart after crash-during-restore: %v", err)
	}
	defer ndb2.Close()
	ix2, err := ndb2.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	ndb2.DrainRestore()
	expectValues(t, ix2, 1200)
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify: %v %v", viols, err)
	}
	t.Logf("restart after half-restore: prep=%+v", rep.Prep)
}

// TestCrashDuringRestartDrainThenRestartAgain: a second system failure
// before the first restart's background redo drains must still lose
// nothing — the first restart's end checkpoint preserved every raised
// expectation, so stale pages are detected on read and recovered from
// their backups.
func TestCrashDuringRestartDrainThenRestartAgain(t *testing.T) {
	db := openTestDB(t, restartOptions())
	ix := loadIndex(t, db, "t", 1200)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	total := 1200
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < total; i += 4 {
		if err := ix.Update(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("first restart: %v", err)
	}
	// Crash again immediately — background redo is mid-drain.
	t.Logf("pending at second crash: %d", ndb.RestoreStats().Pending)
	ndb.Crash()

	ndb2, _, err := ndb.Restart()
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	defer ndb2.Close()
	ix2, err := ndb2.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	ndb2.DrainRestore()
	expectValues(t, ix2, total)
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify: %v %v", viols, err)
	}
}

// TestRestartLosersRolledBackOnDemand: undo of in-flight transactions
// rides the on-demand redo path — each page a rollback touches is redone
// right there, and the loser's effects are gone afterwards.
func TestRestartLosersRolledBackOnDemand(t *testing.T) {
	db := openTestDB(t, restartOptions())
	ix := loadIndex(t, db, "t", 600)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A loser: updates + inserts never committed.
	loser := db.Begin()
	for i := 0; i < 600; i += 6 {
		if err := ix.Update(loser, k(i), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 600; i < 640; i++ {
		if err := ix.Insert(loser, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Force the log so the loser's records survive the crash and demand
	// real undo work.
	db.LogManager().FlushAll()
	db.Crash()

	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ndb.Close()
	if rep.Undo.LosersRolledBack == 0 {
		t.Fatal("no losers rolled back")
	}
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	ndb.DrainRestore()
	expectValues(t, ix2, 600)
	for i := 600; i < 640; i++ {
		if _, err := ix2.Get(k(i)); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("loser insert %d visible after restart: %v", i, err)
		}
	}
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify: %v %v", viols, err)
	}
}
