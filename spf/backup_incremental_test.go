package spf

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// TestBackupNowSkipsUnchangedPages proves the incremental path: a second
// BackupNow after a small update rewrites only the changed pages — the
// backup device's write counter grows by exactly the reported Written —
// while the skipped pages are shared with the previous set by reference.
func TestBackupNowSkipsUnchangedPages(t *testing.T) {
	db := openTestDB(t, testOptions())
	defer db.Close()
	const base = 400
	ix := loadIndex(t, db, "t", base)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}

	set1, rep1, err := db.BackupNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Skipped != 0 || rep1.Written != rep1.Pages || rep1.Pages == 0 {
		t.Fatalf("first backup should write everything: %+v", rep1)
	}

	// Touch a handful of keys — a few leaf pages at most.
	tx := db.Begin()
	for i := 0; i < 3; i++ {
		if err := ix.Update(tx, k(i), []byte("changed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}

	before := db.store.Device().Stats().Writes
	set2, rep2, err := db.BackupNow()
	if err != nil {
		t.Fatal(err)
	}
	delta := db.store.Device().Stats().Writes - before

	if rep2.Written+rep2.Skipped != rep2.Pages {
		t.Fatalf("report does not add up: %+v", rep2)
	}
	if rep2.Skipped == 0 {
		t.Fatalf("incremental backup skipped nothing: %+v", rep2)
	}
	if rep2.Written >= rep2.Pages/2 {
		t.Fatalf("3 updated keys rewrote %d of %d pages", rep2.Written, rep2.Pages)
	}
	if delta != int64(rep2.Written) {
		t.Fatalf("backup device saw %d writes, report says %d images written",
			delta, rep2.Written)
	}

	// Reference counting: dropping the superseded set must not free the
	// slots the incremental set shares. Every page of set2 still resolves.
	if err := db.store.DropSet(set1); err != nil {
		t.Fatal(err)
	}
	ids, err := db.store.SetPages(set2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != rep2.Pages {
		t.Fatalf("set2 lists %d pages, report says %d", len(ids), rep2.Pages)
	}
	ref := core.BackupRef{Kind: core.BackupFull, Loc: set2}
	for _, id := range ids {
		if _, err := db.res.FetchBackup(ref, id); err != nil {
			t.Fatalf("page %d unreadable from set %d after dropping set %d: %v",
				id, set2, set1, err)
		}
	}

	// End to end: single-page recovery repairs corruption from the shared
	// images — the database is fully recoverable from the incremental set.
	for i, id := range ids {
		if i%3 == 0 {
			if err := db.CorruptPage(id); err != nil {
				t.Fatal(err)
			}
			if _, err := db.RecoverPageNow(id); err != nil {
				t.Fatalf("recovering page %d from incremental set: %v", id, err)
			}
		}
	}
	for i := 3; i < base; i += 37 {
		got, err := ix.Get(k(i))
		if err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after recovery: %q, %v", i, got, err)
		}
	}
	if viols, err := ix.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify after recovery from incremental set: %v %v", viols, err)
	}
}
