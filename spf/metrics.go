package spf

import (
	"sort"

	"repro/internal/archive"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/maintenance"
	"repro/internal/restore"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Metrics is the unified engine snapshot: every subsystem's counters
// gathered atomically enough for monitoring (each subsystem snapshot is
// internally consistent; the struct as a whole is a point-in-time gather,
// not a transaction). It is the single source behind the /metrics
// Prometheus exporter and the wire protocol's STATS op; the historical
// per-subsystem accessors (Stats, RestoreStats, MaintenanceStats,
// RestartRedoStats, Index.Counters) all delegate to it.
type Metrics struct {
	// Pool, Device, Log, Txns, Recovery are the foreground engine layers.
	Pool     buffer.Stats
	Device   storage.Stats
	Log      wal.Stats
	Txns     txn.Stats
	Recovery core.Stats
	// Maintenance and Restore are the background services (zero when
	// disabled); RestartRedo is the instant-restart needs-redo ledger
	// (zero for a DB not produced by Restart); Archive is the log
	// lifecycle's archive store plus the archiver's pause gauge (zero
	// unless Options.Lifecycle.Enabled).
	Maintenance maintenance.Stats
	Restore     restore.Stats
	RestartRedo RestartRedoStats
	Archive     archive.Stats
	// PRI sizes the page recovery index; Pages counts logical pages;
	// RetiredSlots counts device slots retired after failures.
	PRI          PRIMetrics
	Pages        int
	RetiredSlots int
	// Crashed and Closed report the DB lifecycle state (see ErrCrashed,
	// ErrClosed).
	Crashed bool
	Closed  bool
	// Indexes holds one entry per registered index, sorted by name.
	Indexes []IndexMetrics
}

// PRIMetrics sizes the page recovery index.
type PRIMetrics struct {
	// Ranges is the number of (possibly range-compressed) entries.
	Ranges int
	// Bytes is the approximate in-memory footprint.
	Bytes int
	// Pages is the number of logical pages covered.
	Pages int
}

// IndexMetrics is the per-index slice of the snapshot: the engine kind,
// cumulative structural churn, and (for B-trees) the optimistic-descent
// outcome counters.
type IndexMetrics struct {
	Name string
	Kind string // "btree" or "hash"
	Root PageID
	// Splits, Adoptions, RootGrows count B-tree structural changes.
	Splits    int64
	Adoptions int64
	RootGrows int64
	// OptimisticHits and OptimisticFallbacks split B-tree point-read
	// descents by whether they completed latch-free on the branch levels.
	OptimisticHits      int64
	OptimisticFallbacks int64
	// BucketSplits and OverflowPages count hash-engine structural changes.
	BucketSplits  int64
	OverflowPages int64
}

func indexMetrics(name string, eng Engine) IndexMetrics {
	c := eng.Counters()
	return IndexMetrics{
		Name: name, Kind: eng.Kind().String(), Root: eng.Root(),
		Splits: c.Splits, Adoptions: c.Adoptions, RootGrows: c.RootGrows,
		OptimisticHits: c.OptimisticHits, OptimisticFallbacks: c.OptimisticFallbacks,
		BucketSplits: c.BucketSplits, OverflowPages: c.OverflowPages,
	}
}

// Metrics returns the unified engine snapshot. It never fails: a crashed
// or closed DB still reports its counters (with Crashed/Closed set), so
// monitoring keeps working through failures — which is exactly when it
// matters.
func (db *DB) Metrics() Metrics {
	m := Metrics{
		Pool:     db.pool.Stats(),
		Device:   db.dev.Stats(),
		Log:      db.log.Stats(),
		Txns:     db.txns.Stats(),
		Recovery: db.rec.Stats(),
		RestartRedo: RestartRedoStats{
			Marked:    db.redoMarked.Load(),
			FastRedos: db.redoFast.Load(),
			Fallbacks: db.redoFull.Load(),
			Pending:   db.redoCount.Load(),
		},
		PRI: PRIMetrics{
			Ranges: db.pri.RangeCount(),
			Bytes:  db.pri.SizeBytes(),
			Pages:  db.pri.PageCount(),
		},
		Pages:        db.pmap.Len(),
		RetiredSlots: db.dev.RetiredCount(),
	}
	if db.maint != nil {
		m.Maintenance = db.maint.Stats()
	}
	if db.sched != nil {
		m.Restore = db.sched.Stats()
	}
	if db.archiver != nil {
		m.Archive = db.archiver.Stats()
	}
	db.mu.Lock()
	m.Crashed = db.crashed
	m.Closed = db.closed
	for name, eng := range db.engines {
		if eng == nil { // reserved by an in-flight CreateIndex
			continue
		}
		m.Indexes = append(m.Indexes, indexMetrics(name, eng))
	}
	db.mu.Unlock()
	sort.Slice(m.Indexes, func(i, j int) bool { return m.Indexes[i].Name < m.Indexes[j].Name })
	return m
}

// Metrics returns this index's slice of the DB snapshot.
func (ix *Index) Metrics() IndexMetrics {
	return indexMetrics(ix.eng.Name(), ix.eng)
}
