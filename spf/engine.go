package spf

import (
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/hashindex"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/wal"
)

// IndexKind selects the storage engine behind a named index. The paper's
// machinery — checksums, the page recovery index, per-page chains, instant
// restart/restore — is a property of the page and log layers, so any
// engine that stores checksummed pages and logs through the shared WAL
// inherits all of it; IndexKind picks which one organizes the keys.
type IndexKind uint8

const (
	// KindBTree is the Foster B-tree: ordered keys, range scans in key
	// order, fence-key cross-checks (§4.2).
	KindBTree IndexKind = iota
	// KindHash is the linear-hashing index: point-op oriented, scans in
	// bucket order, bucket/level-stamp cross-checks standing in for
	// fences.
	KindHash
)

func (k IndexKind) String() string {
	switch k {
	case KindBTree:
		return "btree"
	case KindHash:
		return "hash"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseIndexKind parses the names String produces.
func ParseIndexKind(s string) (IndexKind, error) {
	switch s {
	case "btree", "":
		return KindBTree, nil
	case "hash":
		return KindHash, nil
	default:
		return 0, fmt.Errorf("spf: unknown index kind %q", s)
	}
}

// EngineCounters is the engine-neutral structural-churn snapshot. B-tree
// engines populate the first five fields, hash engines the last two; the
// rest read zero.
type EngineCounters struct {
	// Splits, Adoptions, RootGrows count Foster B-tree structural changes.
	Splits    int64
	Adoptions int64
	RootGrows int64
	// OptimisticHits and OptimisticFallbacks split B-tree point reads by
	// whether they completed latch-free on the branch levels.
	OptimisticHits      int64
	OptimisticFallbacks int64
	// BucketSplits counts linear-hashing split rounds; OverflowPages
	// counts overflow pages linked into bucket chains.
	BucketSplits  int64
	OverflowPages int64
}

// Engine is the seam between the spf layer and a storage structure: the
// operations CreateIndex wires to the shared pool, WAL, maintenance, and
// restore paths. Both internal/btree and internal/hashindex implement it
// (via thin adapters); everything below this interface — detection,
// repair, restart, media restore, scrubbing — is engine-agnostic.
type Engine interface {
	Name() string
	Root() PageID
	Kind() IndexKind
	Insert(t *Txn, key, val []byte) error
	Update(t *Txn, key, val []byte) error
	Delete(t *Txn, key []byte) error
	GetTo(dst, key []byte) ([]byte, error)
	// Scan visits live entries with start <= key < end. B-tree engines
	// emit key order; hash engines emit bucket order (sorted within each
	// bucket).
	Scan(start, end []byte, fn func(Entry) bool) error
	Verify() ([]string, error)
	Counters() EngineCounters
}

// btreeEngine adapts *btree.Tree to Engine.
type btreeEngine struct{ tree *btree.Tree }

func (e btreeEngine) Name() string                          { return e.tree.Name() }
func (e btreeEngine) Root() PageID                          { return e.tree.Root() }
func (e btreeEngine) Kind() IndexKind                       { return KindBTree }
func (e btreeEngine) Insert(t *Txn, key, val []byte) error  { return e.tree.Insert(t, key, val) }
func (e btreeEngine) Update(t *Txn, key, val []byte) error  { return e.tree.Update(t, key, val) }
func (e btreeEngine) Delete(t *Txn, key []byte) error       { return e.tree.Delete(t, key) }
func (e btreeEngine) GetTo(dst, key []byte) ([]byte, error) { return e.tree.GetTo(dst, key) }
func (e btreeEngine) Scan(start, end []byte, fn func(Entry) bool) error {
	return e.tree.Scan(start, end, fn)
}

func (e btreeEngine) Verify() ([]string, error) {
	viols, err := e.tree.VerifyAll()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(viols))
	for i, v := range viols {
		out[i] = v.String()
	}
	return out, nil
}

func (e btreeEngine) Counters() EngineCounters {
	var c EngineCounters
	c.Splits, c.Adoptions, c.RootGrows = e.tree.Counters()
	c.OptimisticHits, c.OptimisticFallbacks = e.tree.OptimisticStats()
	return c
}

// hashEngine adapts *hashindex.Table to Engine, mapping the hash package's
// sentinels onto the spf vocabulary (so errors.Is against ErrNotFound,
// ErrKeyExists, and ErrDetected works identically for both engines).
type hashEngine struct{ table *hashindex.Table }

func (e hashEngine) Name() string    { return e.table.Name() }
func (e hashEngine) Root() PageID    { return e.table.Root() }
func (e hashEngine) Kind() IndexKind { return KindHash }

func (e hashEngine) Insert(t *Txn, key, val []byte) error {
	return mapHashErr(e.table.Insert(t, key, val))
}

func (e hashEngine) Update(t *Txn, key, val []byte) error {
	return mapHashErr(e.table.Update(t, key, val))
}

func (e hashEngine) Delete(t *Txn, key []byte) error {
	return mapHashErr(e.table.Delete(t, key))
}

func (e hashEngine) GetTo(dst, key []byte) ([]byte, error) {
	out, err := e.table.GetTo(dst, key)
	return out, mapHashErr(err)
}

func (e hashEngine) Scan(start, end []byte, fn func(Entry) bool) error {
	return mapHashErr(e.table.Scan(start, end, func(k, v []byte) bool {
		return fn(Entry{Key: k, Value: v})
	}))
}

func (e hashEngine) Verify() ([]string, error) {
	viols, err := e.table.VerifyAll()
	if err != nil {
		return nil, mapHashErr(err)
	}
	out := make([]string, len(viols))
	for i, v := range viols {
		out[i] = v.String()
	}
	return out, nil
}

func (e hashEngine) Counters() EngineCounters {
	var c EngineCounters
	c.BucketSplits, c.OverflowPages = e.table.Counters()
	return c
}

// engineError carries a hash-engine error together with the spf sentinel
// it corresponds to; errors.Is matches either chain.
type engineError struct {
	sentinel error
	err      error
}

func (e *engineError) Error() string   { return e.err.Error() }
func (e *engineError) Unwrap() []error { return []error{e.sentinel, e.err} }

// mapHashErr overlays the spf sentinel vocabulary onto a hash-engine
// error without disturbing its own chain. Errors from the shared layers
// below the engine (ErrPageFailed, ErrCrashed, ...) pass through.
func mapHashErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, hashindex.ErrKeyNotFound):
		return &engineError{sentinel: ErrNotFound, err: err}
	case errors.Is(err, hashindex.ErrKeyExists):
		return &engineError{sentinel: ErrKeyExists, err: err}
	case errors.Is(err, hashindex.ErrDetected):
		return &engineError{sentinel: ErrDetected, err: err}
	default:
		return err
	}
}

// applier is the combined redo applier: log records carry their engine in
// the leading payload byte (the hash index's opcodes occupy a disjoint
// namespace), so one dispatch serves chain replay, redoFromImage, restart
// redo, and media restore for every page type either engine stores.
type applier struct{}

func (applier) ApplyRedo(rec *wal.Record, pg *page.Page) error {
	if hashindex.IsHashOp(rec.Payload) {
		return hashindex.Applier{}.ApplyRedo(rec, pg)
	}
	return btree.Applier{}.ApplyRedo(rec, pg)
}

// openEngine attaches the right engine to an already-created index whose
// root page is rootType — the catalog-reopen dispatch. The root page type
// is the engine tag: hash directories are TypeHash, B-tree roots TypeBTree.
func (db *DB) openEngine(name string, root page.ID, rootType page.Type) Engine {
	if rootType == page.TypeHash {
		return hashEngine{hashindex.Open(name, root, db)}
	}
	return btreeEngine{btree.Open(name, root, db)}
}

// createEngine builds a fresh engine of the given kind under st.
func (db *DB) createEngine(st *txn.Txn, name string, kind IndexKind) (Engine, error) {
	switch kind {
	case KindHash:
		tb, err := hashindex.Create(st, name, db)
		if err != nil {
			return nil, err
		}
		return hashEngine{tb}, nil
	default:
		tr, err := btree.Create(st, name, db)
		if err != nil {
			return nil, err
		}
		return btreeEngine{tr}, nil
	}
}
