package spf

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/restore"
)

// corruptColdPage evicts page id and corrupts its stored image — a latent
// single-page failure waiting on the next validating read.
func corruptColdPage(t *testing.T, db *DB, id PageID) {
	t.Helper()
	if err := db.EvictPage(id); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(id); err != nil {
		t.Fatal(err)
	}
}

// TestForegroundFaultRepairsThroughScheduler: a damaged page read by a
// foreground Get routes through the urgent path of the repair scheduler,
// is repaired exactly once, and the read succeeds.
func TestForegroundFaultRepairsThroughScheduler(t *testing.T) {
	db := openTestDB(t, testOptions())
	defer db.Close()
	ix := loadIndex(t, db, "t", 300)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := ix.Root()
	for _, id := range db.Pages() {
		if id > victim {
			victim = id // some leaf
		}
	}
	corruptColdPage(t, db, victim)

	// Every key readable despite the damage.
	for i := 0; i < 300; i++ {
		if got, err := ix.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d: %q, %v", i, got, err)
		}
	}
	st := db.Stats()
	if st.Recovery.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st.Recovery.Recoveries)
	}
	if st.Restore.UrgentRequests == 0 || st.Restore.Repaired != 1 {
		t.Fatalf("restore stats = %+v, want one urgent repair", st.Restore)
	}
	if st.Restore.Pending != 0 || st.Restore.InFlight != 0 {
		t.Fatalf("scheduler not idle: %+v", st.Restore)
	}
}

// TestConcurrentFaultersCoalesce: many goroutines faulting on the same
// damaged page must trigger exactly one chain replay (shared per-page
// future), not one replay per faulter.
func TestConcurrentFaultersCoalesce(t *testing.T) {
	const faulters = 12
	db := openTestDB(t, testOptions())
	defer db.Close()
	ix := loadIndex(t, db, "t", 200)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Lengthen the victim's chain a little so the replay window is real.
	tx := db.Begin()
	for i := 0; i < 200; i++ {
		if err := ix.Update(tx, k(i), v(i+1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var leaf PageID
	for _, id := range db.Pages() {
		if id > ix.Root() {
			leaf = id
		}
	}
	corruptColdPage(t, db, leaf)

	start := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for f := 0; f < faulters; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if got, err := ix.Get(k(i)); err != nil || !bytes.Equal(got, v(i+1000)) {
					t.Errorf("faulter %d key %d: %q, %v", f, i, got, err)
					failures.Add(1)
					return
				}
			}
		}(f)
	}
	close(start)
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	st := db.Stats()
	// One ticket per damaged page; the dozen faulters coalesced onto it.
	// (The exact coalesced count is timing-dependent — late faulters hit
	// the repaired frame — but replays must not multiply.)
	if st.Recovery.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (coalescing failed): restore %+v",
			st.Recovery.Recoveries, st.Restore)
	}
}

// TestMediaRecoveryServesReadsOnDemand: after FailDevice+RecoverMedia the
// database answers reads immediately — each fault promotes that page's
// restore — while the bulk of the device is still queued behind them.
func TestMediaRecoveryServesReadsOnDemand(t *testing.T) {
	opts := testOptions()
	opts.Restore.Workers = 1 // keep the background queue busy
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 600)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	// Committed work after the backup — must be replayed from the chain.
	tx := db.Begin()
	for i := 600; i < 650; i++ {
		if err := ix.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.FailDevice()

	ndb, rep, err := db.RecoverMedia()
	if err != nil {
		t.Fatalf("media recovery: %v", err)
	}
	defer ndb.Close()
	if rep.Media.PagesRestored == 0 {
		t.Fatal("no pages registered for restore")
	}
	pendingAtReturn := ndb.RestoreStats().Pending
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	// Reads served while restore is in flight (on small test databases
	// the queue can drain before we look; the availability *benchmark*
	// asserts the overlap quantitatively).
	for i := 0; i < 650; i += 7 {
		if got, err := ix2.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d during restore: %q, %v", i, got, err)
		}
	}
	midPending := ndb.RestoreStats().Pending
	ndb.DrainRestore()
	for i := 0; i < 650; i++ {
		if got, err := ix2.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after drain: %q, %v", i, got, err)
		}
	}
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify after media recovery: %v %v", viols, err)
	}
	if st := ndb.RestoreStats(); st.Pending != 0 {
		t.Fatalf("pending after drain: %+v", st)
	}
	t.Logf("pending at return=%d, after sampled reads=%d, restore stats=%+v",
		pendingAtReturn, midPending, ndb.RestoreStats())
}

// TestScrubCampaignRepairsThroughScheduler: maintenance scrub findings
// flow through the scheduler at background priority and every injected
// latent failure is repaired online.
func TestScrubCampaignRepairsThroughScheduler(t *testing.T) {
	opts := maintenanceOptions()
	db := openTestDB(t, opts)
	defer db.Close()
	ix := loadIndex(t, db, "t", 400)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var victims []PageID
	for _, id := range db.Pages() {
		if id != ix.Root() && id%5 == 0 && len(victims) < 6 {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		corruptColdPage(t, db, id)
	}
	waitUntil(t, 20*time.Second, "campaign repairs", func() bool {
		return db.MaintenanceStats().Repaired >= int64(len(victims))
	})
	st := db.Stats()
	if st.Restore.Enqueued == 0 {
		t.Fatalf("campaign repaired without the scheduler: %+v", st.Restore)
	}
	for i := 0; i < 400; i++ {
		if got, err := ix.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after scrub repair: %q, %v", i, got, err)
		}
	}
}

// TestCloseStopsRestoreGoroutines: the scheduler's workers are joined by
// Close exactly like maintenance workers — no leaks.
func TestCloseStopsRestoreGoroutines(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	opts := testOptions()
	opts.Restore.Workers = 4
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 200)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var leaf PageID
	for _, id := range db.Pages() {
		if id > ix.Root() {
			leaf = id
		}
	}
	corruptColdPage(t, db, leaf)
	if _, err := ix.Get(k(0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "goroutines to exit", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestRestoreDisabledFallback: with the scheduler off the engine behaves
// like the pre-scheduler code — inline recovery on the read path, a
// synchronous bulk media restore — and still passes the same checks.
func TestRestoreDisabledFallback(t *testing.T) {
	opts := testOptions()
	opts.Restore.Disabled = true
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 200)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var leaf PageID
	for _, id := range db.Pages() {
		if id > ix.Root() {
			leaf = id
		}
	}
	corruptColdPage(t, db, leaf)
	for i := 0; i < 200; i++ {
		if got, err := ix.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d: %q, %v", i, got, err)
		}
	}
	if st := db.Stats(); st.Recovery.Recoveries < 1 || st.Restore.Enqueued != 0 {
		t.Fatalf("inline fallback stats wrong: recovery=%+v restore=%+v", st.Recovery, st.Restore)
	}
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	db.FailDevice()
	ndb, _, err := db.RecoverMedia()
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if got, err := ix2.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after sync media recovery: %q, %v", i, got, err)
		}
	}
}

// TestRestoreStressForegroundFaultsVsSaturatedScrub is the -race stress of
// the PR: a saturated scrub queue (many latent failures found at once) and
// foreground readers faulting on a slice of the same pages, racing
// promotions, coalescing, busy requeues (pinned evictions), and finally a
// Crash mid-flight. Every committed key must survive into the restarted
// database and no fault may escape repair or escalate.
func TestRestoreStressForegroundFaultsVsSaturatedScrub(t *testing.T) {
	const keys = 800
	opts := maintenanceOptions()
	opts.PoolFrames = 256
	opts.Restore.Workers = 3
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", keys)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Saturate: corrupt a large batch of cold pages in one shot so the
	// campaign floods the queue with background tickets.
	root := ix.Root()
	var victims []PageID
	for _, id := range db.Pages() {
		if id != root && id%3 == 0 {
			victims = append(victims, id)
		}
	}
	if len(victims) < 10 {
		t.Fatalf("only %d victims; grow the dataset", len(victims))
	}
	for _, id := range victims {
		if err := db.EvictPage(id); err != nil {
			t.Fatal(err)
		}
		if err := db.CorruptPage(id); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(keys)
				got, err := ix.Get(k(i))
				if err != nil {
					if errors.Is(err, ErrCrashed) || errors.Is(err, restore.ErrStopped) {
						return
					}
					t.Errorf("worker %d key %d: %v", w, i, err)
					return
				}
				if !bytes.Equal(got, v(i)) {
					t.Errorf("worker %d key %d: wrong value %q", w, i, got)
					return
				}
			}
		}(w)
	}

	// Every victim must be repaired online — through the campaign's
	// background tickets or a foreground fault's promoted one, whichever
	// finds it first (a foreground repair relocates the page, so the
	// campaign then skips the retired slot; the union covers all).
	waitUntil(t, 30*time.Second, "all latent failures repaired online", func() bool {
		return db.Stats().Recovery.Recoveries >= int64(len(victims))
	})
	// Crash mid-campaign: the scheduler must quiesce (workers joined,
	// queued tickets failed) before the log truncates.
	db.Crash()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	defer ndb.Close()
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if got, err := ix2.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after restart: %q, %v", i, got, err)
		}
	}
	if st := ndb.Stats(); st.Recovery.Escalations != 0 {
		t.Fatalf("escalations after restart: %+v", st.Recovery)
	}
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify after restart: %v %v", viols, err)
	}
}

// TestOnDemandReadDoesNotWaitForBulkRestore: during a media recovery with
// a deep background queue, a foreground read of an unrestored page must
// complete long before the bulk restore drains — the promoted ticket runs
// next, and the worker's per-completion yield keeps the woken faulter
// from convoying behind a CPU-bound drain on scarce cores (the regression
// this test pins down: pre-yield, a promoted read stalled a whole
// preemption quantum, ~the full drain on one core).
func TestOnDemandReadDoesNotWaitForBulkRestore(t *testing.T) {
	opts := testOptions()
	opts.DataSlots = 1 << 15
	opts.PoolFrames = 2048
	opts.Restore.Workers = 1
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 5000)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 3; r++ {
		tx := db.Begin()
		for i := 0; i < 5000; i++ {
			if err := ix.Update(tx, k(i), v(i+5000*r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	db.FailDevice()
	ndb, _, err := db.RecoverMedia()
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	if ndb.RestoreStats().Pending < 50 {
		t.Skipf("queue drained before the read could race it: %+v", ndb.RestoreStats())
	}
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	// A key near the end of the keyspace: its leaf sits deep in the
	// background queue.
	if got, err := ix2.Get(k(4800)); err != nil || !bytes.Equal(got, v(4800+15000)) {
		t.Fatalf("on-demand read: %q, %v", got, err)
	}
	// The read must have overtaken the bulk restore, not waited for it.
	if pending := ndb.RestoreStats().Pending; pending == 0 {
		t.Fatal("read completed only after the whole bulk restore drained")
	}
	ndb.DrainRestore()
}

// TestPromotionPullsScrubTicketForward: with a single worker pinned down
// by a long background queue, a foreground fault on a queued page must be
// served ahead of older background entries (promotion), quickly.
func TestPromotionPullsScrubTicketForward(t *testing.T) {
	opts := testOptions()
	opts.Restore.Workers = 1
	db := openTestDB(t, opts)
	defer db.Close()
	ix := loadIndex(t, db, "t", 600)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	root := ix.Root()
	var victims []PageID
	for _, id := range db.Pages() {
		if id != root {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		corruptColdPage(t, db, id)
	}
	// Flood the single worker with background repairs via Scrub's repair
	// loop — but Scrub waits per page, so enqueue directly instead.
	for _, id := range victims {
		db.sched.Enqueue(id, restore.Background)
	}
	// Foreground read: whatever page it faults on must be promoted past
	// the queue. The whole scan completing proves promotions work; the
	// stat proves they actually fired.
	for i := 0; i < 600; i += 11 {
		if got, err := ix.Get(k(i)); err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d: %q, %v", i, got, err)
		}
	}
	db.DrainRestore()
	st := db.RestoreStats()
	if st.Promotions == 0 {
		t.Fatalf("no promotions recorded: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("failed repairs: %+v", st)
	}
}
