package spf

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/backup"
	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/maintenance"
	"repro/internal/page"
	"repro/internal/pagemap"
	"repro/internal/recovery"
	"repro/internal/restore"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Checkpoint takes a fuzzy checkpoint (§5.2.6) and returns the LSN of the
// checkpoint-end record. When the log lifecycle is enabled, the
// checkpoint's redo horizon is pushed to the archiver — the trigger that
// lets live log segments beneath it recycle once they are archived.
func (db *DB) Checkpoint() (LSN, error) {
	if err := db.opErr(); err != nil {
		return 0, err
	}
	if err := db.runDueBackups(); err != nil {
		return 0, err
	}
	res, err := recovery.Checkpoint(recovery.CheckpointDeps{
		Log: db.log, Pool: db.pool, Txns: db.txns, PRI: db.pri, Map: db.pmap,
	})
	if err != nil {
		return 0, err
	}
	if db.archiver != nil {
		db.archiver.SetCheckpointHorizon(res.RedoHorizon)
		db.archiver.Kick()
	}
	return res.End, nil
}

// BackupDatabase takes a full database backup into the backup store and
// installs it as the backup source for every page (range-compressed PRI
// entries, §5.2.2). Returns the backup set ID.
func (db *DB) BackupDatabase() (uint64, error) {
	id, _, err := db.BackupNow()
	return id, err
}

// BackupReport quantifies one BackupNow run.
type BackupReport struct {
	Pages   int // logical pages captured in the set
	Written int // images newly copied to the backup device
	Skipped int // unchanged images shared with the previous set
}

// BackupNow takes a full-coverage backup set incrementally: a page whose
// recovery-index LastLSN shows no durable write since the previous set
// captured it (and which is not dirty in the pool) is shared with that set
// via slot reference counting instead of being rewritten. The resulting
// set is still a complete BackupFull source — media recovery and
// single-page recovery resolve against it exactly as against a from-
// scratch set; only the backup device traffic shrinks.
//
// The skip test is conservative on both sides of the PRI's §5.2.2
// lifecycle: FlushAll first makes every pending change durable, and a
// durable write always raises LastLSN to the page's content LSN
// (CompleteWrite), so a changed page necessarily has LastLSN above the
// LSN the previous set captured. An unchanged page has LastLSN at or
// below it — including the zero a previous full backup's SetRange
// installed — and a page mutated after the flush is caught by IsDirty.
func (db *DB) BackupNow() (uint64, BackupReport, error) {
	var rep BackupReport
	if err := db.opErr(); err != nil {
		return 0, rep, err
	}
	// Flush everything so the backup captures a write-consistent state.
	if err := db.pool.FlushAll(); err != nil {
		return 0, rep, err
	}
	db.log.FlushAll()
	// The PRI skip test needs single-page recovery's bookkeeping; without
	// it every page is rewritten (prev == 0 disables sharing).
	var prev uint64
	if !db.opts.DisableSinglePageRecovery {
		prev = db.store.LatestSet()
	}
	setEnd := db.log.EndLSN()
	w := db.store.BeginFullSet(setEnd)
	ids := db.pmap.Pages()
	rep.Pages = len(ids)
	for _, id := range ids {
		if prev != 0 {
			if prevLSN, ok := db.store.SetPageInfo(prev, id); ok {
				if e, err := db.pri.Get(id); err == nil &&
					e.LastLSN <= prevLSN && !db.pool.IsDirty(id) {
					if err := w.AddShared(id, prev); err != nil {
						return 0, rep, err
					}
					rep.Skipped++
					continue
				}
			}
		}
		h, err := db.pool.Fetch(id)
		if err != nil {
			return 0, rep, fmt.Errorf("spf: backing up page %d: %w", id, err)
		}
		h.RLock()
		pg := h.Page().Clone()
		h.RUnlock()
		h.Release()
		if err := w.Add(pg); err != nil {
			return 0, rep, err
		}
		rep.Written++
	}
	w.Commit()
	// The completed set raises the archive-release horizon: history below
	// setEnd is unreachable by any chain replay that resolves against this
	// (or a newer) set, so the archiver may garbage-collect it — subject to
	// its release floor (active-transaction undo, log-backed backup refs).
	if db.archiver != nil {
		db.archiver.SetBackupHorizon(setEnd)
		db.archiver.Kick()
	}
	if db.opts.DisableSinglePageRecovery {
		return w.SetID(), rep, nil
	}
	// One range-compressed PRI entry per contiguous run of page IDs.
	for run := 0; run < len(ids); {
		end := run
		for end+1 < len(ids) && ids[end+1] == ids[end]+1 {
			end++
		}
		e := core.Entry{Backup: core.BackupRef{Kind: core.BackupFull, Loc: w.SetID()}}
		db.pri.SetRange(ids[run], ids[end], e)
		db.log.Append(&wal.Record{
			Type:    wal.TypePRIUpdate,
			PageID:  ids[run],
			Payload: core.EncodeSetRange(ids[run], ids[end], e),
		})
		run = end + 1
	}
	db.log.FlushAll()
	return w.SetID(), rep, nil
}

// BackupPage takes an explicit backup copy of one page ("a conservative
// policy might take such a copy after every 100 updates", §5.2.1) and
// frees the superseded backup.
func (db *DB) BackupPage(id PageID) error {
	if err := db.opErr(); err != nil {
		return err
	}
	// The backup must capture the durable state: flush first if dirty.
	if db.pool.IsResident(id) {
		if err := db.pool.FlushPage(id); err != nil && !errors.Is(err, buffer.ErrNotResident) {
			return err
		}
	}
	h, err := db.pool.Fetch(id)
	if err != nil {
		return err
	}
	h.RLock()
	pg := h.Page().Clone()
	h.RUnlock()
	h.Release()
	ref, err := db.store.PutPage(pg)
	if err != nil {
		return err
	}
	old, err := db.pri.SetBackup(id, ref)
	if err != nil {
		db.pri.Set(id, core.Entry{Backup: ref, LastLSN: pg.LSN()})
	} else {
		db.releaseBackup(old)
	}
	db.log.Append(&wal.Record{
		Type: wal.TypePRIUpdate, PageID: id,
		Payload: core.EncodeSetBackup(ref),
	})
	return nil
}

// runDueBackups services the backup-every-N-updates policy.
func (db *DB) runDueBackups() error {
	db.mu.Lock()
	due := make([]page.ID, 0, len(db.backupsDue))
	for id := range db.backupsDue {
		due = append(due, id)
	}
	db.backupsDue = make(map[page.ID]bool)
	db.mu.Unlock()
	for _, id := range due {
		if err := db.BackupPage(id); err != nil {
			return fmt.Errorf("spf: policy backup of page %d: %w", id, err)
		}
	}
	return nil
}

// InjectPageFault arms a fault on the physical slot currently holding the
// logical page.
func (db *DB) InjectPageFault(id PageID, kind FaultKind, sticky bool) error {
	phys, ok := db.pmap.Lookup(id)
	if !ok {
		return fmt.Errorf("spf: page %d has no physical slot yet", id)
	}
	db.dev.InjectFault(phys, kind, sticky)
	return nil
}

// CorruptPage flips bits in the stored image of the logical page —
// persistent silent damage.
func (db *DB) CorruptPage(id PageID) error {
	phys, ok := db.pmap.Lookup(id)
	if !ok {
		return fmt.Errorf("spf: page %d has no physical slot yet", id)
	}
	return db.dev.CorruptStored(phys)
}

// EvictPage forces a page out of the buffer pool (writing it back first if
// dirty) so the next access exercises the full read path.
func (db *DB) EvictPage(id PageID) error {
	err := db.pool.Evict(id)
	if errors.Is(err, buffer.ErrNotResident) {
		return nil
	}
	return err
}

// FlushAll writes every dirty page back to the device.
func (db *DB) FlushAll() error { return db.pool.FlushAll() }

// ScrubReport summarizes one scrubbing pass plus the repairs it triggered.
type ScrubReport struct {
	Scanned   int
	BadSlots  int
	Recovered int
	Escalated int
}

// Scrub re-reads every mapped slot verifying checksums (the paper's "disk
// scrubbing", §1) and repairs every failure it finds through the repair
// scheduler at background priority (inline when the scheduler is
// disabled) — a concurrent foreground fault on the same page coalesces
// onto the scrub's repair instead of replaying the chain twice.
func (db *DB) Scrub() (ScrubReport, error) {
	if err := db.opErr(); err != nil {
		return ScrubReport{}, err
	}
	mapped := db.pmap.MappedSlots()
	res := db.dev.Scrub(func(slot storage.PhysID) bool {
		_, ok := mapped[slot]
		return !ok
	})
	rep := ScrubReport{Scanned: res.Scanned, BadSlots: len(res.Failures())}
	for _, slot := range res.Failures() {
		id, ok := mapped[slot]
		if !ok {
			continue
		}
		if err := db.repairLatent(id); err != nil {
			rep.Escalated++
			continue
		}
		rep.Recovered++
	}
	return rep, nil
}

// RecoverPageNow runs single-page recovery for one page explicitly and
// returns the recovery report (normally recovery happens transparently on
// the read path).
func (db *DB) RecoverPageNow(id PageID) (core.Report, error) {
	_ = db.EvictPage(id)
	_, rep, err := db.rec.RecoverPage(id)
	return rep, err
}

// Close shuts the database down cleanly: the repair scheduler and the
// maintenance service stop (deterministically — every background
// goroutine is joined; the scheduler first, since the scrub campaign may
// be parked on one of its repair futures), every dirty page and the whole
// log are flushed, and the group-commit flusher (if running) drains its
// pending waiters and stops. A crashed database only stops the background
// goroutines — its state is already frozen for Restart. Close is
// idempotent. After Close, operations fail with ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.stopRestore()
	db.stopMaintenance()
	db.stopLifecycle()
	if db.isCrashed() {
		db.log.Close()
		return nil
	}
	if err := db.pool.FlushAll(); err != nil {
		db.log.Close()
		return err
	}
	db.log.FlushAll()
	db.log.Close()
	return nil
}

// Crash simulates a system failure: the buffer pool and the unflushed log
// tail vanish; the devices and the stable log survive. The repair
// scheduler and the maintenance service are quiesced first, the same way
// the log quiesces in-flight appenders: an in-flight repair or flush
// batch completes (its writes and appends then predate the crash), queued
// repairs fail with restore.ErrStopped (unparking their waiters — the
// scrub campaign among them, which is why the scheduler stops before the
// service that feeds it), and no background work runs while the log
// truncates its volatile tail — a worker racing the truncation could
// otherwise read freed log bytes or write a page whose log just vanished,
// breaking the WAL rule.
func (db *DB) Crash() {
	db.mu.Lock()
	db.crashed = true
	db.mu.Unlock()
	db.stopRestore()
	db.stopMaintenance()
	db.stopLifecycle()
	db.log.Crash()
	db.pool.Crash()
}

// RestartReport quantifies a restart recovery.
type RestartReport struct {
	Analysis recovery.AnalysisResult
	// Prep summarizes instant-restart preparation. Populated only when
	// OnDemand is true; otherwise Redo holds the synchronous pass.
	Prep recovery.PrepReport
	Redo recovery.RedoReport
	Undo recovery.UndoReport
	// OnDemand reports that redo ran as on-demand per-page replay (the
	// instant-restart path) rather than a synchronous forward log scan.
	OnDemand bool
	Duration time.Duration
}

// Restart performs ARIES-style restart recovery (analysis, redo, undo —
// §5.1.2) over the surviving log and device and returns a fresh, usable
// DB. The page recovery index is reconstructed during analysis and
// repaired during redo exactly per Fig. 12.
//
// Redo is reshaped the way RecoverMedia reshaped media recovery: instead
// of a forward log scan that reads and replays every dirty page before
// the first transaction can run, preparation is O(active pages)
// (recovery.PrepareRedo raises each dirty page's recovery-index
// expectation to its chain head, taken from the log's per-page chain
// index), every such page is marked needs-redo and enqueued with the
// repair scheduler at background priority — cost-ordered by chain length
// — and Restart returns before redo completes. The first fetch of a
// needs-redo page fails the PageLSN cross-check, promotes its ticket to
// urgent, and pays only its own chain replay (usually just the missing
// tail on top of the on-disk image); background workers drain the rest,
// partitioned by page. DrainRestore is the "bulk redo finished" barrier.
//
// The synchronous forward-scan redo still runs when the repair scheduler
// is unavailable (Options.Restore.Disabled, single-page recovery or the
// PageLSN check disabled) — the on-demand path depends on validating
// reads to trigger per-page replay.
func (db *DB) Restart() (*DB, *RestartReport, error) {
	start := time.Now()
	ndb := &DB{
		opts:         db.opts,
		dev:          db.dev,
		store:        db.store,
		log:          db.log,
		engines:      make(map[string]Engine),
		updateCounts: make(map[page.ID]int),
		backupsDue:   make(map[page.ID]bool),
	}
	ndb.txns = txn.NewManager(ndb.log)
	ndb.txns.SetUndoer(undoer{ndb})

	analysis, err := recovery.Analyze(ndb.log, db.opts.DataSlots)
	if err != nil {
		return nil, nil, fmt.Errorf("spf: restart analysis: %w", err)
	}
	ndb.pmap = analysis.Map
	ndb.pri = analysis.PRI
	ndb.res = &backup.Resolver{Store: ndb.store, Log: ndb.log, PageSize: db.opts.PageSize, Data: ndb.dev}
	ndb.rec = core.NewRecoverer(ndb.log, ndb.pri, ndb.res, applier{})

	rep := &RestartReport{Analysis: *analysis}
	// On-demand redo needs the validating read path end to end: the
	// PageLSN cross-check to detect a stale image, the Recover hook to
	// replay it, and the scheduler to order and drain the backlog.
	instant := !db.opts.Restore.Disabled && !db.opts.DisableSinglePageRecovery &&
		!db.opts.DisablePageLSNCheck
	var marks []recovery.RedoPage
	if instant {
		// Preparation mutates the page map and recovery index, so it runs
		// before the pool exists and any read can fault.
		var prepRep *recovery.PrepReport
		marks, prepRep, err = recovery.PrepareRedo(ndb.log, ndb.pmap, ndb.pri, analysis)
		if err != nil {
			return nil, nil, fmt.Errorf("spf: restart redo prep: %w", err)
		}
		rep.Prep = *prepRep
		rep.OnDemand = true
	}

	ndb.pool = buffer.NewPool(buffer.Config{
		Capacity: db.opts.PoolFrames, Shards: db.opts.PoolShards,
		Device: ndb.dev, Map: ndb.pmap, Log: ndb.log,
		Hooks: ndb.hooks(),
	})
	ndb.startRestore()
	// The archive survives a crash (it is a durable device): the recovered
	// DB inherits the store, so pre-crash history stays readable, and
	// re-archiving after a crash between archive-write and recycle is
	// idempotent — the store skips records below its durable cursor.
	ndb.initLifecycle(db)
	fail := func(err error) (*DB, *RestartReport, error) {
		ndb.stopRestore()
		ndb.stopLifecycle()
		return nil, nil, err
	}

	if instant {
		ndb.installRedoMarks(marks)
		chaos.At("restart.prep")
		for _, m := range marks {
			ndb.sched.EnqueueCost(m.ID, restore.Background, m.ChainLen)
		}
	} else {
		redoRep, err := recovery.Redo(recovery.RedoDeps{
			Log: ndb.log, Pool: ndb.pool, Map: ndb.pmap, PRI: ndb.pri,
			Applier: applier{}, PageSize: db.opts.PageSize,
			LogPRIRepair: func(pid page.ID, lsn page.LSN) {
				ndb.log.Append(&wal.Record{
					Type: wal.TypePRIUpdate, PageID: pid,
					Payload: core.EncodeWriteComplete(core.WriteCompletePayload{PageLSN: lsn}),
				})
			},
		}, analysis)
		if err != nil {
			return fail(fmt.Errorf("spf: restart redo: %w", err))
		}
		rep.Redo = *redoRep
	}

	// Undo runs while background redo drains: each page a rollback
	// touches is fetched through the validating pool read, so its redo is
	// promoted and completes right there — per page, redo still strictly
	// precedes undo.
	undoRep, err := recovery.Undo(recovery.UndoDeps{Txns: ndb.txns}, analysis)
	if err != nil {
		return fail(fmt.Errorf("spf: restart undo: %w", err))
	}
	rep.Undo = *undoRep

	if err := ndb.reopenCatalog(); err != nil {
		return fail(err)
	}
	// The checkpoint snapshots the raised recovery-index expectations, so
	// a second crash before the drain completes still detects every stale
	// page on read — the redo then runs from the page's real backup.
	if _, err := ndb.Checkpoint(); err != nil {
		return fail(err)
	}
	ndb.startMaintenance()
	ndb.startLifecycle()
	rep.Duration = time.Since(start)
	return ndb, rep, nil
}

// reopenCatalog finds the meta page (the lowest TypeMeta page) and reloads
// the index registry. The registry maps each name to its root page; the
// root page's type tags the engine (TypeHash → linear-hash directory,
// otherwise a Foster B-tree root), so the catalog format never changed
// when the second engine arrived.
func (db *DB) reopenCatalog() error {
	for _, id := range db.pmap.Pages() {
		h, err := db.pool.Fetch(id)
		if err != nil {
			continue
		}
		typ := h.Page().Type()
		if typ != page.TypeMeta {
			h.Release()
			continue
		}
		db.metaID = id
		h.RLock()
		reg, derr := btree.DecodeRegistry(h.Page().Payload())
		h.RUnlock()
		h.Release()
		if derr != nil {
			return derr
		}
		for name, root := range reg {
			rh, err := db.pool.Fetch(root)
			if err != nil {
				return fmt.Errorf("spf: reopening index %q: %w", name, err)
			}
			rootType := rh.Page().Type()
			rh.Release()
			db.engines[name] = db.openEngine(name, root, rootType)
		}
		return nil
	}
	return errors.New("spf: meta page not found after restart")
}

// FailDevice simulates a whole-device media failure. The repair scheduler
// and maintenance stop first: repairs against a failed device can only
// escalate, and a scrub campaign sweeping it would report every slot as
// one.
func (db *DB) FailDevice() {
	db.mu.Lock()
	db.crashed = true
	db.mu.Unlock()
	db.stopRestore()
	db.stopMaintenance()
	db.stopLifecycle()
	db.dev.FailDevice()
	db.pool.Crash()
}

// MediaRecoveryReport quantifies a media recovery.
type MediaRecoveryReport struct {
	Media    recovery.MediaReport
	Undo     recovery.UndoReport
	Duration time.Duration
}

// RecoverMedia replaces the failed device and brings the database back
// from the most recent full backup plus the log (§5.1.3), reshaped as
// instant restore (Sauer et al.): instead of restoring every image and
// replaying the whole log before the first read can be served, it
// prepares the page map and page recovery index (recovery.RecoverMedia,
// O(pages) — per-page chain heads come from the log's chain index, no
// forward scan), enqueues every page with the repair scheduler at
// background priority, and returns a usable DB immediately. Foreground
// reads of a not-yet-restored page promote its ticket to urgent and are
// served as soon as that one page's chain replays; background workers
// drain the rest. DrainRestore blocks until bulk restore completes.
// All transactions that were active at the failure are rolled back.
func (db *DB) RecoverMedia() (*DB, *MediaRecoveryReport, error) {
	start := time.Now()
	setID := db.store.LatestSet()
	if setID == 0 {
		return nil, nil, errors.New("spf: no full backup available for media recovery")
	}
	db.dev.Revive()
	ndb := &DB{
		opts:         db.opts,
		dev:          db.dev,
		store:        db.store,
		log:          db.log,
		engines:      make(map[string]Engine),
		updateCounts: make(map[page.ID]int),
		backupsDue:   make(map[page.ID]bool),
	}
	ndb.txns = txn.NewManager(ndb.log)
	ndb.txns.SetUndoer(undoer{ndb})
	ndb.res = &backup.Resolver{Store: ndb.store, Log: ndb.log, PageSize: db.opts.PageSize, Data: ndb.dev}

	pm, pri, mediaRep, err := recovery.RecoverMedia(recovery.MediaDeps{
		Log: ndb.log, Dev: ndb.dev, Store: ndb.store, Mode: db.opts.WriteMode,
	}, setID)
	if err != nil {
		return nil, nil, fmt.Errorf("spf: media recovery: %w", err)
	}
	ndb.pmap = pm
	ndb.pri = pri
	ndb.rec = core.NewRecoverer(ndb.log, ndb.pri, ndb.res, applier{})
	ndb.pool = buffer.NewPool(buffer.Config{
		Capacity: db.opts.PoolFrames, Shards: db.opts.PoolShards,
		Device: ndb.dev, Map: ndb.pmap, Log: ndb.log,
		Hooks: ndb.hooks(),
	})
	ndb.startRestore()
	ndb.initLifecycle(db)
	fail := func(err error) (*DB, *MediaRecoveryReport, error) {
		ndb.stopRestore()
		ndb.stopLifecycle()
		return nil, nil, err
	}

	// The instant-restore shape: every page is queued for background
	// restore; on-demand faults are served first via promotion. Without
	// the scheduler the restore is synchronous (the pre-instant-restore
	// behavior): every page is repaired before the DB is returned.
	if ndb.sched != nil {
		for _, id := range pm.Pages() {
			ndb.sched.EnqueueCost(id, restore.Background, ndb.chainCost(id))
		}
	} else {
		for _, id := range pm.Pages() {
			if err := ndb.performRepair(id); err != nil {
				return fail(fmt.Errorf("spf: media recovery of page %d: %w", id, err))
			}
		}
	}

	// Roll back transactions that were in flight at the failure. Undo
	// fetches its pages through the validating pool read, so each one it
	// touches is restored on demand right here.
	analysis, err := recovery.Analyze(ndb.log, db.opts.DataSlots)
	if err != nil {
		return fail(err)
	}
	undoRep, err := recovery.Undo(recovery.UndoDeps{Txns: ndb.txns}, analysis)
	if err != nil {
		return fail(err)
	}
	if err := ndb.reopenCatalog(); err != nil {
		return fail(err)
	}
	if _, err := ndb.Checkpoint(); err != nil {
		return fail(err)
	}
	ndb.startMaintenance()
	ndb.startLifecycle()
	rep := &MediaRecoveryReport{Media: *mediaRep, Undo: *undoRep, Duration: time.Since(start)}
	return ndb, rep, nil
}

// Stats aggregates engine counters for experiments and monitoring.
type Stats struct {
	Pool        buffer.Stats
	Device      storage.Stats
	Log         wal.Stats
	Txns        txn.Stats
	Recovery    core.Stats
	Maintenance maintenance.Stats
	Restore     restore.Stats
	PRIRanges   int
	PRIBytes    int
	PRIPages    int
	DBPages     int
	Retired     int
}

// Stats returns a snapshot of all engine counters. It is the historical
// flat view of the unified Metrics snapshot and delegates to it.
func (db *DB) Stats() Stats {
	m := db.Metrics()
	return Stats{
		Pool:        m.Pool,
		Device:      m.Device,
		Log:         m.Log,
		Txns:        m.Txns,
		Recovery:    m.Recovery,
		Maintenance: m.Maintenance,
		Restore:     m.Restore,
		PRIRanges:   m.PRI.Ranges,
		PRIBytes:    m.PRI.Bytes,
		PRIPages:    m.PRI.Pages,
		DBPages:     m.Pages,
		Retired:     m.RetiredSlots,
	}
}

// RestoreStats reports the repair scheduler's counters: tickets enqueued,
// requests coalesced onto shared per-page futures, urgent promotions,
// repairs completed/failed, busy requeues, and the pending/in-flight
// gauges. Zero when the scheduler is disabled.
// Delegates to Metrics.
func (db *DB) RestoreStats() restore.Stats { return db.Metrics().Restore }

// DrainRestore blocks until the repair scheduler's queue is empty (every
// scheduled repair completed) or the scheduler stops. After RecoverMedia
// it is the "bulk restore finished" barrier; reads need not wait for it —
// they are served on demand throughout.
func (db *DB) DrainRestore() {
	if db.sched != nil {
		db.sched.Drain()
	}
}

// MaintenanceStats reports the background maintenance counters: flush
// batches and pages written back asynchronously, and the scrub campaign's
// running ScrubReport-style tallies (pages scrubbed, sweeps completed,
// latent failures found, repaired online, escalated, plus the current
// effective scrub rate — halved automatically while foreground write
// pressure keeps the pool above the flushers' dirty watermark). Zero when
// the service is disabled.
// Delegates to Metrics.
func (db *DB) MaintenanceStats() maintenance.Stats { return db.Metrics().Maintenance }

// KickMaintenance wakes the background flushers immediately (useful in
// tests and before measuring a quiesced state). No-op when maintenance is
// disabled.
func (db *DB) KickMaintenance() {
	if db.maint != nil {
		db.maint.Kick()
	}
}

// SimulatedIO returns the accumulated simulated I/O time of the data
// device, the log, and the backup store.
func (db *DB) SimulatedIO() (data, log, bak time.Duration) {
	return db.dev.Clock().Elapsed(), db.log.Clock().Elapsed(), db.store.Device().Clock().Elapsed()
}

// ResetSimulatedIO zeroes all three clocks.
func (db *DB) ResetSimulatedIO() {
	db.dev.Clock().Reset()
	db.log.Clock().Reset()
	db.store.Device().Clock().Reset()
}

// PRI exposes the page recovery index for inspection by experiments.
func (db *DB) PRI() *core.PRI { return db.pri }

// LogManager exposes the write-ahead log for inspection by experiments.
func (db *DB) LogManager() *wal.Manager { return db.log }

// Device exposes the data device for fault campaigns.
func (db *DB) Device() *storage.Device { return db.dev }

// PageMapLen reports how many logical pages exist.
func (db *DB) PageMapLen() int { return db.pmap.Len() }

// Pages lists all logical page IDs in ascending order.
func (db *DB) Pages() []PageID { return db.pmap.Pages() }

// PhysicalSlot resolves a logical page to its current device slot.
func (db *DB) PhysicalSlot(id PageID) (storage.PhysID, bool) { return db.pmap.Lookup(id) }

// WriteMode reports the configured page-write policy.
func (db *DB) WriteMode() pagemap.Mode { return db.opts.WriteMode }
