package spf

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// maintenanceOptions returns options with the background service tuned for
// test speed: tight age trigger, aggressive scrub rate.
func maintenanceOptions() Options {
	opts := testOptions()
	opts.Maintenance = MaintenanceOptions{
		Enabled:             true,
		FlushInterval:       2 * time.Millisecond,
		FlushBatchPages:     16,
		DirtyHighWatermark:  0.25,
		ScrubPagesPerSecond: 200000,
		ScrubBatchPages:     256,
	}
	return opts
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncWriteBackDrainsAndGroupsPRIAppends: with maintenance enabled,
// dirty pages drain without any explicit flush call, and the resulting PRI
// update records reach the log through grouped appends.
func TestAsyncWriteBackDrainsAndGroupsPRIAppends(t *testing.T) {
	db := openTestDB(t, maintenanceOptions())
	defer db.Close()
	ix := loadIndex(t, db, "wb", 400)

	tx := db.Begin()
	for i := 0; i < 400; i++ {
		if err := ix.Update(tx, k(i), []byte(fmt.Sprintf("updated-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "background drain", func() bool {
		return db.MaintenanceStats().PagesFlushed > 0 && db.pool.DirtyCount() == 0
	})
	ms := db.MaintenanceStats()
	if ms.FlushBatches == 0 {
		t.Fatal("no flush batches recorded")
	}
	ls := db.Stats().Log
	if ls.BatchAppends == 0 {
		t.Fatal("write-back logged no grouped PRI appends")
	}
	if ms.PagesFlushed < int64(ms.FlushBatches) {
		t.Fatalf("stats inconsistent: %d pages in %d batches", ms.PagesFlushed, ms.FlushBatches)
	}
}

// TestMaintenanceUnderFaultInjectionStress is the paper's promise end to
// end, under -race: foreground transactions, the async flusher, and the
// scrub campaign run concurrently while latent single-page failures are
// injected on cold pages. Every injected failure must be detected and
// repaired by the campaign without stopping foreground traffic, and a
// crash must lose no acknowledged commit.
func TestMaintenanceUnderFaultInjectionStress(t *testing.T) {
	opts := maintenanceOptions()
	// Ample frames: the cold index stays resident, so only the campaign
	// (not a foreground read miss) can discover the injected damage; and
	// no foreground eviction write-back races the simulated crash below.
	// The hot workers below insert for as long as the campaign waits run,
	// and the latch-coupled tree made them fast enough to outgrow the
	// original 4096-frame pool before the first sweep completed (evicting
	// cold pages and handing the repairs to the foreground read path), so
	// the headroom is sized for the whole worst-case wait and the workers
	// are lightly paced.
	opts.PoolFrames = 1 << 16
	opts.DataSlots = 1 << 17
	db := openTestDB(t, opts)

	// A cold index whose pages, once written back, nobody touches: the
	// injection target.
	cold := loadIndex(t, db, "cold", 600)
	waitUntil(t, 10*time.Second, "cold index write-back", func() bool {
		return db.pool.DirtyCount() == 0
	})

	// Hot foreground traffic on separate indexes.
	const workers = 3
	names := make([]string, workers)
	for w := range names {
		names[w] = fmt.Sprintf("hot-%d", w)
		if _, err := db.CreateIndex(names[w]); err != nil {
			t.Fatal(err)
		}
	}
	type ack struct{ worker, seq int }
	var ackMu sync.Mutex
	acked := make(map[ack]bool)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ix, err := db.Index(names[w])
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			for seq := 0; !stop.Load(); seq++ {
				tx := db.Begin()
				if err := ix.Insert(tx, k(seq), v(seq)); err != nil {
					return // crash in flight
				}
				if err := db.Commit(tx); err != nil {
					if errors.Is(err, ErrCommitLost) || errors.Is(err, ErrCrashed) {
						return
					}
					t.Errorf("worker %d commit %d: %v", w, seq, err)
					return
				}
				ackMu.Lock()
				acked[ack{w, seq}] = true
				ackMu.Unlock()
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}
	// Concurrent readers of the cold index: the campaign must repair
	// underneath them without ever surfacing an error.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			i := rng.Intn(600)
			got, err := cold.Get(k(i))
			if err != nil {
				if errors.Is(err, ErrCrashed) {
					return
				}
				t.Errorf("cold read %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, v(i)) {
				t.Errorf("cold read %d = %q", i, got)
				return
			}
		}
	}()

	// Inject latent damage: distinct cold-index pages, persistent silent
	// corruption in the stored image — discoverable only by scrubbing
	// (the resident copies keep serving reads).
	rng := rand.New(rand.NewSource(42))
	coldPages := treePages(t, db, cold)
	rng.Shuffle(len(coldPages), func(i, j int) { coldPages[i], coldPages[j] = coldPages[j], coldPages[i] })
	nInject := 12
	if nInject > len(coldPages) {
		nInject = len(coldPages)
	}
	injected := coldPages[:nInject]
	for i, id := range injected {
		if err := db.CorruptPage(id); err != nil {
			t.Fatalf("corrupting page %d: %v", id, err)
		}
		if i%4 == 3 {
			time.Sleep(2 * time.Millisecond) // spread across scrub ticks
		}
	}

	// The campaign must find and repair every one of them while the
	// foreground keeps running.
	waitUntil(t, 20*time.Second, "campaign repairs", func() bool {
		ms := db.MaintenanceStats()
		return ms.Repaired >= int64(nInject)
	})
	ms := db.MaintenanceStats()
	if ms.Escalated != 0 {
		t.Fatalf("campaign escalated %d repairs", ms.Escalated)
	}
	if ms.LatentFound < int64(nInject) {
		t.Fatalf("campaign found %d latent failures, want >= %d", ms.LatentFound, nInject)
	}
	// No residual damage on any mapped slot (read-only device scan; the
	// injected corruption was persistent, so a clean scan proves repair,
	// not masking).
	waitUntil(t, 10*time.Second, "device clean", func() bool {
		mapped := db.pmap.MappedSlots()
		res := db.dev.Scrub(func(slot storage.PhysID) bool { _, ok := mapped[slot]; return !ok })
		return len(res.Failures()) == 0
	})

	// Crash with traffic in flight: acknowledged commits must survive.
	time.Sleep(10 * time.Millisecond)
	db.Crash()
	stop.Store(true)
	wg.Wait()

	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ndb.Close()
	ackMu.Lock()
	n := len(acked)
	ackMu.Unlock()
	if n == 0 {
		t.Fatal("stress produced no acknowledged commits")
	}
	for a := range acked {
		ix, err := ndb.Index(names[a.worker])
		if err != nil {
			t.Fatalf("index %s lost: %v", names[a.worker], err)
		}
		got, err := ix.Get(k(a.seq))
		if err != nil {
			t.Errorf("acked key %d/%d missing after restart: %v", a.worker, a.seq, err)
			continue
		}
		if !bytes.Equal(got, v(a.seq)) {
			t.Errorf("acked key %d/%d = %q after restart", a.worker, a.seq, got)
		}
	}
	// The cold index survived its repairs and the crash intact.
	ncold, err := ndb.Index("cold")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		got, err := ncold.Get(k(i))
		if err != nil {
			t.Fatalf("cold key %d after restart: %v", i, err)
		}
		if !bytes.Equal(got, v(i)) {
			t.Fatalf("cold key %d = %q after restart", i, got)
		}
	}
	if viols, err := ncold.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("cold index verify: %v %v", viols, err)
	}
	// Maintenance restarted with the recovered database.
	waitUntil(t, 10*time.Second, "maintenance active after restart", func() bool {
		ms := ndb.MaintenanceStats()
		return ms.ScrubTicks > 0
	})
}

// treePages collects the page IDs reachable from an index root via Scan of
// the page map: every page currently mapped whose ID is at or after the
// index's root region. For injection purposes we simply take all pages and
// filter to those the cold index owns by probing recovery metadata — the
// tree's own stats give the node count, and the contiguous allocation of
// the loader makes [root, root+nodes) a faithful slice of its pages.
func treePages(t *testing.T, db *DB, ix *Index) []PageID {
	t.Helper()
	stats, err := ix.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	var out []PageID
	root := ix.Root()
	for _, id := range db.Pages() {
		if id >= root && len(out) < stats.Nodes {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		t.Fatal("no pages found for index")
	}
	return out
}

// TestCloseStopsMaintenanceGoroutines: Close must join every background
// goroutine deterministically — no leaked tickers or workers.
func TestCloseStopsMaintenanceGoroutines(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	opts := maintenanceOptions()
	opts.Maintenance.FlushWorkers = 3
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "leakcheck", 200)
	tx := db.Begin()
	for i := 0; i < 200; i++ {
		if err := ix.Update(tx, k(i), v(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "some background activity", func() bool {
		return db.MaintenanceStats().ScrubTicks > 0
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// All maintenance and group-commit goroutines must be gone; allow the
	// runtime a moment to reap exited goroutines.
	waitUntil(t, 10*time.Second, "goroutines to exit", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
	// Close is idempotent, including the maintenance stop.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashQuiescesMaintenance: after Crash returns, the service is
// stopped (stats frozen) and restart hands back a database whose
// maintenance keeps the same configuration.
func TestCrashQuiescesMaintenance(t *testing.T) {
	db := openTestDB(t, maintenanceOptions())
	ix := loadIndex(t, db, "quiesce", 100)
	tx := db.Begin()
	for i := 0; i < 100; i++ {
		if err := ix.Update(tx, k(i), v(i+7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	frozen := db.MaintenanceStats()
	time.Sleep(20 * time.Millisecond)
	if got := db.MaintenanceStats(); got != frozen {
		t.Fatalf("maintenance still running after Crash: %+v vs %+v", got, frozen)
	}
	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	waitUntil(t, 10*time.Second, "maintenance on restarted db", func() bool {
		return ndb.MaintenanceStats().ScrubTicks > 0
	})
	nix, err := ndb.Index("quiesce")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := nix.Get(k(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if !bytes.Equal(got, v(i+7)) {
			t.Fatalf("key %d = %q", i, got)
		}
	}
}
