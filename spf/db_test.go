package spf

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func testOptions() Options {
	return Options{
		PageSize:   1024,
		DataSlots:  8192,
		PoolFrames: 64,
	}
}

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func k(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// loadIndex creates a B-tree index with n committed keys.
func loadIndex(t *testing.T, db *DB, name string, n int) *Index {
	t.Helper()
	return loadIndexKind(t, db, name, KindBTree, n)
}

// loadIndexKind creates an index of the given engine kind with n
// committed keys.
func loadIndexKind(t *testing.T, db *DB, name string, kind IndexKind, n int) *Index {
	t.Helper()
	ix, err := db.CreateIndexKind(name, kind)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if err := ix.Insert(tx, k(i), v(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return ix
}

func expectValues(t *testing.T, ix *Index, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		got, err := ix.Get(k(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, v(i)) {
			t.Fatalf("get %d = %q", i, got)
		}
	}
}

func TestBasicCRUDAndScan(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "users", 500)
	expectValues(t, ix, 500)

	tx := db.Begin()
	if err := ix.Update(tx, k(10), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(tx, k(20)); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	got, _ := ix.Get(k(10))
	if string(got) != "updated" {
		t.Errorf("updated value = %q", got)
	}
	if _, err := ix.Get(k(20)); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("deleted key: %v", err)
	}
	count := 0
	if err := ix.Scan(nil, nil, func(e Entry) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 499 {
		t.Errorf("scan count = %d, want 499", count)
	}
	if viols, err := ix.Verify(); err != nil || len(viols) != 0 {
		t.Errorf("verify: %v %v", viols, err)
	}
}

func TestIndexRegistry(t *testing.T) {
	db := openTestDB(t, testOptions())
	if _, err := db.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("a"); err == nil {
		t.Error("duplicate index created")
	}
	names, err := db.Indexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("indexes = %v", names)
	}
	if _, err := db.Index("c"); !errors.Is(err, ErrUnknownIndex) {
		t.Errorf("unknown index: %v", err)
	}
}

func TestSinglePageRecoveryFromSilentCorruption(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 800)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored image of the page holding k(400).
	victim := findLeafOf(t, db, ix, k(400))
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	// The read detects the corruption and repairs it transparently; the
	// Get just succeeds.
	got, err := ix.Get(k(400))
	if err != nil {
		t.Fatalf("get through recovery: %v", err)
	}
	if !bytes.Equal(got, v(400)) {
		t.Errorf("recovered value = %q", got)
	}
	st := db.Stats()
	if st.Recovery.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recovery.Recoveries)
	}
	if st.Retired != 1 {
		t.Errorf("retired slots = %d, want 1", st.Retired)
	}
	// Everything else intact; invariants hold.
	expectValues(t, ix, 800)
	if viols, err := ix.Verify(); err != nil || len(viols) != 0 {
		t.Errorf("verify after recovery: %v %v", viols, err)
	}
}

// findLeafOf locates the logical page currently holding key via scan of
// physical slots — test helper using engine internals.
func findLeafOf(t *testing.T, db *DB, ix *Index, key []byte) PageID {
	t.Helper()
	// Walk down using the tree itself: corrupting the leaf that holds
	// the key is easiest done by fetching it through a descent recorded
	// by Stats... simpler: brute force over all pages: find the leaf
	// whose payload contains the key bytes.
	for _, id := range db.pmap.Pages() {
		h, err := db.pool.Fetch(id)
		if err != nil {
			continue
		}
		h.RLock()
		isBTree := h.Page().Type().String() == "btree"
		hasKey := bytes.Contains(h.Page().Payload(), key)
		h.RUnlock()
		h.Release()
		if isBTree && hasKey && id != ix.Root() {
			return id
		}
	}
	t.Fatalf("no page holds key %q", key)
	return 0
}

func TestSinglePageRecoveryFromReadError(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 400)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(100))
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.InjectPageFault(victim, FaultReadError, true); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get(k(100))
	if err != nil {
		t.Fatalf("get through recovery: %v", err)
	}
	if !bytes.Equal(got, v(100)) {
		t.Errorf("recovered = %q", got)
	}
}

func TestLostWriteDetectedByPageLSNCrossCheck(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 300)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(150))
	// Arm a lost write, then update the page and force it out: the
	// device acknowledges but keeps the stale image.
	if err := db.InjectPageFault(victim, FaultLostWrite, false); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := ix.Update(tx, k(150), []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	// The stale image has a valid checksum; only the PRI cross-check can
	// catch it — and then single-page recovery rebuilds the real state.
	got, err := ix.Get(k(150))
	if err != nil {
		t.Fatalf("get after lost write: %v", err)
	}
	if string(got) != "new-value" {
		t.Errorf("lost write not recovered: %q", got)
	}
	if db.Stats().Recovery.Recoveries == 0 {
		t.Error("no recovery performed; lost write slipped through")
	}
}

func TestLostWriteUndetectedWithoutCrossCheck(t *testing.T) {
	// Ablation A2: with the PageLSN check disabled, the stale page is
	// served silently — the paper's nightmare scenario.
	opts := testOptions()
	opts.DisablePageLSNCheck = true
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 300)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(150))
	if err := db.InjectPageFault(victim, FaultLostWrite, false); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := ix.Update(tx, k(150), []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get(k(150))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(got) == "new-value" {
		t.Error("stale image not served — test setup wrong?")
	}
}

func TestEscalationWithoutSinglePageRecovery(t *testing.T) {
	// Fig. 1 baseline: a traditional engine treats the bad page as a
	// media failure.
	opts := testOptions()
	opts.DisableSinglePageRecovery = true
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 300)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(100))
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Get(k(100)); !errors.Is(err, ErrPageFailed) {
		t.Errorf("want ErrPageFailed escalation, got %v", err)
	}
}

func TestCrashRecoveryCommittedSurvivesLoserRolledBack(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 400)
	// A committed update after the load.
	tx := db.Begin()
	if err := ix.Update(tx, k(7), []byte("committed-update")); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// A loser transaction, still active at the crash.
	loser := db.Begin()
	for i := 400; i < 450; i++ {
		if err := ix.Insert(loser, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Update(loser, k(8), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// Flush some pages so the loser's effects reach the device.
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if rep.Undo.LosersRolledBack == 0 {
		t.Error("no losers rolled back")
	}
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix2.Get(k(7))
	if err != nil || string(got) != "committed-update" {
		t.Errorf("committed update lost: %q, %v", got, err)
	}
	got, err = ix2.Get(k(8))
	if err != nil || !bytes.Equal(got, v(8)) {
		t.Errorf("loser update not rolled back: %q, %v", got, err)
	}
	for i := 400; i < 450; i++ {
		if _, err := ix2.Get(k(i)); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("loser insert %d visible after restart: %v", i, err)
		}
	}
	expectValues(t, ix2, 7)
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Errorf("verify after restart: %v %v", viols, err)
	}
}

func TestCrashRecoveryUnflushedCommitsRedone(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 200)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Committed but never flushed to the data device: redo must replay.
	tx := db.Begin()
	for i := 200; i < 260; i++ {
		if err := ix.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if rep.OnDemand {
		if rep.Prep.PagesMarked == 0 {
			t.Error("instant restart marked nothing needs-redo despite unflushed commits")
		}
	} else if rep.Redo.RecordsApplied == 0 {
		t.Error("redo applied nothing despite unflushed commits")
	}
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 260; i++ {
		got, err := ix2.Get(k(i))
		if err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after restart: %q, %v", i, got, err)
		}
	}
}

func TestRestartIdempotentAfterCleanShutdown(t *testing.T) {
	db := openTestDB(t, testOptions())
	_ = loadIndex(t, db, "t", 100)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash() // everything flushed: nothing to recover
	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Undo.LosersRolledBack != 0 {
		t.Errorf("losers after clean shutdown: %d", rep.Undo.LosersRolledBack)
	}
	ix, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	expectValues(t, ix, 100)
}

func TestOperationsFailWhileCrashed(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 10)
	db.Crash()
	if _, err := ix.Get(k(1)); !errors.Is(err, ErrCrashed) {
		t.Errorf("get on crashed db: %v", err)
	}
	if _, err := db.CreateIndex("x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("create on crashed db: %v", err)
	}
	if _, err := db.Checkpoint(); !errors.Is(err, ErrCrashed) {
		t.Errorf("checkpoint on crashed db: %v", err)
	}
}

func TestMediaRecoveryFromFullBackup(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 300)
	setID, err := db.BackupDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if setID == 0 {
		t.Fatal("no backup set id")
	}
	// More committed work after the backup — must be replayed from log.
	tx := db.Begin()
	for i := 300; i < 350; i++ {
		if err := ix.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.FailDevice()
	ndb, rep, err := db.RecoverMedia()
	if err != nil {
		t.Fatalf("media recovery: %v", err)
	}
	if rep.Media.PagesRestored == 0 {
		t.Error("no pages restored")
	}
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 350; i++ {
		got, err := ix2.Get(k(i))
		if err != nil || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d after media recovery: %q, %v", i, got, err)
		}
	}
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Errorf("verify after media recovery: %v %v", viols, err)
	}
}

func TestFullBackupServesSinglePageRecovery(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 300)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	// Update some keys after the backup so the per-page chain matters.
	tx := db.Begin()
	for i := 0; i < 300; i += 10 {
		if err := ix.Update(tx, k(i), []byte(fmt.Sprintf("v2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(150))
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get(k(150))
	if err != nil {
		t.Fatalf("get through recovery: %v", err)
	}
	if string(got) != "v2-150" {
		t.Errorf("recovered %q, want post-backup update", got)
	}
}

func TestBackupEveryNUpdatesPolicy(t *testing.T) {
	opts := testOptions()
	opts.BackupEveryNUpdates = 20
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 50)
	// Hammer one key's page with updates; commits run the policy.
	for round := 0; round < 10; round++ {
		tx := db.Begin()
		for i := 0; i < 10; i++ {
			if err := ix.Update(tx, k(5), []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	// The page must now have an explicit page backup, so single-page
	// recovery applies only the post-backup suffix of the chain.
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(5))
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := db.RecoverPageNow(victim)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if rep.BackupKind.String() != "page-backup" {
		t.Errorf("backup kind = %v, want page-backup", rep.BackupKind)
	}
	if rep.RecordsApplied > 40 {
		t.Errorf("applied %d records; policy should bound the chain near 20", rep.RecordsApplied)
	}
	got, err := ix.Get(k(5))
	if err != nil || string(got) != "r9-9" {
		t.Errorf("final value = %q, %v", got, err)
	}
}

func TestScrubFindsAndRepairsLatentErrors(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix := loadIndex(t, db, "t", 600)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Latent damage on three pages.
	victims := []PageID{
		findLeafOf(t, db, ix, k(50)),
		findLeafOf(t, db, ix, k(300)),
		findLeafOf(t, db, ix, k(550)),
	}
	uniq := map[PageID]bool{}
	for _, id := range victims {
		if uniq[id] {
			continue
		}
		uniq[id] = true
		if err := db.EvictPage(id); err != nil {
			t.Fatal(err)
		}
		if err := db.CorruptPage(id); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadSlots != len(uniq) {
		t.Errorf("scrub found %d bad slots, want %d", rep.BadSlots, len(uniq))
	}
	if rep.Recovered != len(uniq) {
		t.Errorf("scrub recovered %d, want %d", rep.Recovered, len(uniq))
	}
	expectValues(t, ix, 600)
}

func TestAbortAfterPolicyBackups(t *testing.T) {
	// Rollback across pages that have explicit backups must still work.
	opts := testOptions()
	opts.BackupEveryNUpdates = 5
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 50)
	tx := db.Begin()
	for i := 0; i < 50; i++ {
		if err := ix.Update(tx, k(i), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	expectValues(t, ix, 50)
}

func TestCopyOnWriteModePreMoveImagesServeRecovery(t *testing.T) {
	opts := testOptions()
	opts.WriteMode = 1 // pagemap.CopyOnWrite
	opts.DataSlots = 16384
	db := openTestDB(t, opts)
	ix := loadIndex(t, db, "t", 300)
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Update and flush again: the pre-move image becomes the backup.
	tx := db.Begin()
	for i := 0; i < 300; i += 3 {
		if err := ix.Update(tx, k(i), []byte(fmt.Sprintf("cow-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	victim := findLeafOf(t, db, ix, k(150))
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := db.RecoverPageNow(victim)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if rep.BackupKind.String() != "pre-move-image" {
		t.Errorf("backup kind = %v, want pre-move-image", rep.BackupKind)
	}
	got, err := ix.Get(k(150))
	if err != nil || string(got) != "cow-150" {
		t.Errorf("recovered = %q, %v", got, err)
	}
}

func TestStatsAndSimulatedIO(t *testing.T) {
	db := openTestDB(t, testOptions())
	_ = loadIndex(t, db, "t", 100)
	st := db.Stats()
	if st.DBPages == 0 || st.Log.Appends == 0 || st.Txns.UserCommitted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.PRIPages == 0 || st.PRIBytes == 0 {
		t.Errorf("PRI stats empty: %+v", st)
	}
	d, l, b := db.SimulatedIO()
	_ = d
	_ = l
	_ = b
	db.ResetSimulatedIO()
}
