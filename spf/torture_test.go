package spf

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// tortureSeeds returns the seed matrix: CHAOS_SEEDS (comma-separated
// integers) when set, else a fixed default. Each seed deterministically
// derives the crash point, the hit count it fires at, the corruption
// victims, and the workload schedule.
func tortureSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3, 4, 5, 6}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// crashPoints are the chaos sites that model an asynchronous system
// failure: the seed rotation picks one per run, and its k-th execution
// signals the crash controller. wal.truncate and restart.prep are armed
// in every run for nested fault injection (see runTorture).
// recovery.checkpoint models a crash in the half-taken-checkpoint window
// (dirty pages flushed, checkpoint-end not yet durable), forcing restart
// to replay from the previous master record.
// wal.archive.seal, wal.archive.write, and wal.recycle land the crash
// inside the log lifecycle: between choosing a run boundary and writing
// it, between assembling the run and committing it to the archive, and
// between durably archiving a segment and recycling it — the windows
// where a non-idempotent archiver would lose chain history or double-
// archive records.
var crashPoints = []string{
	"wal.publish", "buffer.writeback", "restore.complete", "recovery.checkpoint",
	"wal.archive.seal", "wal.archive.write", "wal.recycle",
}

// TestChaosTortureCrashRestartVerify loops crash → restart → verify over
// the seed matrix. Invariants checked every iteration, under any crash
// schedule the points produce:
//   - no acked commit is lost (a Commit that returned nil is durable);
//   - an unacked transaction leaves no partial effects behind;
//   - every injected persistent page fault — including one injected
//     mid-crash and one injected mid-restart, so single-page recovery
//     runs inside system recovery — is repaired transparently;
//   - the tree verifies clean and the engine shuts down without leaking
//     goroutines.
func TestChaosTortureCrashRestartVerify(t *testing.T) {
	for _, seed := range tortureSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runTorture(t, seed)
		})
	}
}

func runTorture(t *testing.T, seed int64) {
	defer chaos.Reset()
	g0 := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(seed))

	opts := testOptions()
	opts.PoolFrames = 48 // small pool: evictions → write-backs mid-workload
	opts.Restore.Workers = 2
	opts.Seed = seed
	// Log lifecycle on with a tiny run granularity and a fast loop: the
	// torture workload then archives and recycles continuously, so crashes
	// land between archive-write and recycle and acked history must
	// survive chain replays that cross into the archive.
	opts.Lifecycle = LifecycleOptions{
		Enabled:      true,
		SegmentBytes: 4 << 10,
		Interval:     2 * time.Millisecond,
	}
	db := openTestDB(t, opts)

	const base = 800
	ix := loadIndex(t, db, "t", base)
	// The same workload also runs against a hash index: every chaos
	// schedule that tortures the B-tree tortures the linear-hashing
	// engine too, through the identical shared machinery.
	hx := loadIndexKind(t, db, "h", KindHash, base)
	// Every page gets a registered backup so any corruption victim is
	// recoverable.
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// acked holds the last value whose Commit returned nil; poisoned
	// marks keys touched by a transaction with any non-nil outcome — the
	// crash makes their final value legitimately ambiguous.
	acked := make(map[string][]byte)
	poisoned := make(map[string]bool)
	for i := 0; i < base; i++ {
		acked[string(k(i))] = v(i)
	}

	// Nested-failure arms, active in every run: the first Crash corrupts
	// a stored image from inside the log's truncation window, and the
	// first Restart corrupts another right after redo preparation — so a
	// persistent single-page fault is present while system recovery runs.
	pages := db.Pages()
	victimCrash := pages[rng.Intn(len(pages))]
	victimPrep := pages[rng.Intn(len(pages))]
	chaos.Arm("wal.truncate", 1, func(chaos.Hit) { _ = db.CorruptPage(victimCrash) })
	chaos.Arm("restart.prep", 1, func(chaos.Hit) { _ = db.CorruptPage(victimPrep) })

	// The crash point for this run. The action must not block and must
	// not crash synchronously (a crash quiesces the very code path the
	// point lives on); it signals the controller goroutine instead,
	// modeling a real asynchronous failure.
	chosen := crashPoints[int(seed)%len(crashPoints)]
	var fireAt int64
	switch chosen {
	case "wal.publish":
		fireAt = 1 + rng.Int63n(120)
	case "buffer.writeback":
		fireAt = 1 + rng.Int63n(12)
	case "restore.complete":
		fireAt = 1 + rng.Int63n(8)
	case "recovery.checkpoint":
		// At most two checkpoints run after arming (the mid-workload one
		// and the end-of-restart one); a trip point the schedule never
		// reaches is covered by the manual-crash fallback below.
		fireAt = 1 + rng.Int63n(2)
	case "wal.archive.seal", "wal.archive.write", "wal.recycle":
		// Lifecycle points fire once per archiver pass; the 2ms loop makes
		// a handful of passes over the run, and the fallback covers seeds
		// whose workload outruns the archiver.
		fireAt = 1 + rng.Int63n(3)
	}
	crashC := make(chan struct{}, 1)
	// Set once the manual-crash fallback closes crashC: a point whose trip
	// count is first reached during Restart (e.g. recovery.checkpoint at
	// the end-of-restart checkpoint) must not signal a dead controller.
	var manualCrash atomic.Bool
	if chosen != "restore.complete" {
		chaos.Arm(chosen, fireAt, func(chaos.Hit) {
			if manualCrash.Load() {
				return
			}
			select {
			case crashC <- struct{}{}:
			default:
			}
		})
	}
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		if _, ok := <-crashC; ok {
			db.Crash()
		}
	}()

	// Seeded workload: batched updates of existing keys and inserts of
	// fresh ones, with a mid-run flush and checkpoint to generate
	// write-back traffic. Stops at the first crash-induced error.
	next := base
	stopped := false
	for round := 0; round < 60 && !stopped; round++ {
		if round == 15 {
			_ = db.FlushAll() // tolerate ErrCrashed et al.
		}
		if round == 35 {
			_, _ = db.Checkpoint()
		}
		if round == 45 {
			// A mid-run full backup advances the release horizon, so the
			// crash can also land while archived history is being dropped.
			_, _, _ = db.BackupNow()
		}
		tx := db.Begin()
		pending := make(map[string][]byte)
		for op := 0; op < 4 && !stopped; op++ {
			if rng.Intn(2) == 0 {
				i := rng.Intn(base)
				val := []byte(fmt.Sprintf("upd-%d-%d", round, op))
				if err := ix.Update(tx, k(i), val); err != nil {
					stopped = true
					break
				}
				if err := hx.Update(tx, k(i), val); err != nil {
					stopped = true
					break
				}
				pending[string(k(i))] = val
			} else {
				i := next
				next++
				if err := ix.Insert(tx, k(i), v(i)); err != nil {
					stopped = true
					break
				}
				if err := hx.Insert(tx, k(i), v(i)); err != nil {
					stopped = true
					break
				}
				pending[string(k(i))] = v(i)
			}
		}
		if stopped {
			for key := range pending {
				poisoned[key] = true
			}
			break
		}
		if err := db.Commit(tx); err != nil {
			for key := range pending {
				poisoned[key] = true
			}
			stopped = true
			break
		}
		for key, val := range pending {
			acked[key] = val
		}
	}
	if !stopped {
		// The point never fired (schedule-dependent): crash manually so
		// the iteration still exercises restart.
		manualCrash.Store(true)
		close(crashC)
		<-crashed
		db.Crash()
	} else {
		<-crashed
	}

	// Arm the mid-drain crash before Restart when this run targets the
	// restore workers: the point fires while background redo drains, and
	// the main goroutine (polling Fired below) plays crash controller.
	if chosen == "restore.complete" {
		chaos.Arm(chosen, fireAt, func(chaos.Hit) {})
	}

	ndb, rep, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if chosen == "restore.complete" {
		// Wait for the armed hit (it fires on a restore worker during
		// the drain), then crash mid-drain and restart once more.
		deadline := time.Now().Add(5 * time.Second)
		for !chaos.Fired(chosen) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		ndb.Crash()
		ndb, rep, err = ndb.Restart()
		if err != nil {
			t.Fatalf("restart after mid-drain crash: %v", err)
		}
	}
	defer ndb.Close()
	ndb.DrainRestore()

	// Invariant 1: every acked commit survived; unacked keys are either
	// absent or hold a previously acked value (covered by skipping
	// poisoned keys — their rollback correctness is asserted structurally
	// below and by the loser checks in restart_test.go).
	ix2, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	hx2, err := ndb.Index("h")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for key, want := range acked {
		if poisoned[key] {
			continue
		}
		got, err := ix2.Get([]byte(key))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("acked key %q lost after crash at %s#%d: got %q, %v",
				key, chosen, fireAt, got, err)
		}
		hgot, err := hx2.Get([]byte(key))
		if err != nil || !bytes.Equal(hgot, want) {
			t.Fatalf("acked key %q lost from hash index after crash at %s#%d: got %q, %v",
				key, chosen, fireAt, hgot, err)
		}
		checked++
	}
	// Invariant 2: both engines verify clean despite the injected
	// persistent faults.
	if viols, err := ix2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("verify after torture: %v %v", viols, err)
	}
	if viols, err := hx2.Verify(); err != nil || len(viols) != 0 {
		t.Fatalf("hash verify after torture: %v %v", viols, err)
	}
	// The always-armed nested-fault points must have fired: wal.truncate
	// on the first Crash, restart.prep on the first instant Restart.
	if !chaos.Fired("wal.truncate") {
		t.Error("wal.truncate never fired despite a crash")
	}
	if rep.OnDemand && !chaos.Fired("restart.prep") {
		t.Error("restart.prep never fired despite an instant restart")
	}
	t.Logf("seed=%d point=%s#%d fired=%v acked-checked=%d poisoned=%d redo=%+v",
		seed, chosen, fireAt, chaos.Fired(chosen), checked, len(poisoned), ndb.RestartRedoStats())

	// Invariant 3: clean shutdown leaks no goroutines.
	if err := ndb.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > g0+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > g0+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d at start, %d after close\n%s",
			g0, n, buf[:runtime.Stack(buf, true)])
	}
}
