package spf

import (
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/page"
	"repro/internal/wal"
)

// initLifecycle builds the log-lifecycle machinery when Options.Lifecycle
// is enabled: the archive store (inherited from prev across Restart and
// RecoverMedia — the archive is a durable device and survives crashes),
// the retrying archive reader wired into the WAL's truncated-read
// fallback, and the archiver that owns the truncation invariant. The
// background loop is NOT started here — call startLifecycle once the DB
// is fully constructed — but the archiver exists immediately so the
// bootstrap (or post-restart) checkpoint can push its redo horizon.
func (db *DB) initLifecycle(prev *DB) {
	lo := db.opts.Lifecycle
	if !lo.Enabled {
		return
	}
	if prev != nil && prev.arch != nil {
		db.arch = prev.arch
	} else {
		db.arch = archive.NewStore(lo.ArchiveProfile, wal.FirstLSN())
	}
	db.log.SetArchive(db.arch.NewReader(lo.RetryAttempts, lo.RetryBackoff))
	interval := lo.Interval
	if interval == 0 {
		interval = 25 * time.Millisecond
	}
	db.archiver = archive.New(db.log, db.arch, archive.Config{
		SegmentBytes:  lo.SegmentBytes,
		Interval:      interval,
		RetryAttempts: lo.RetryAttempts,
		RetryBackoff:  lo.RetryBackoff,
		ReleaseFloor:  db.archiveReleaseFloor,
		Logf:          lo.Logf,
	})
	// A pre-existing full backup set re-establishes the release horizon
	// after a restart: everything the newest set covers stays releasable.
	if set := db.store.LatestSet(); set != 0 {
		if lsn, err := db.store.SetLSN(set); err == nil {
			db.archiver.SetBackupHorizon(lsn)
		}
	}
}

// startLifecycle launches the archiver's background loop (no-op when the
// lifecycle is disabled or Interval is negative).
func (db *DB) startLifecycle() {
	if db.archiver != nil {
		db.archiver.Start()
	}
}

// stopLifecycle joins the archiver loop. Close, Crash, and FailDevice
// call it BEFORE the log crashes or closes: an archiver step reads the
// live log and calls Recycle, so no lifecycle work may race the log's
// tail truncation — the same WAL-safety ordering stopRestore and
// stopMaintenance observe. Idempotent.
func (db *DB) stopLifecycle() {
	if db.archiver != nil {
		db.archiver.Stop()
	}
}

// archiveReleaseFloor is the engine-side clamp on archive garbage
// collection: archived history is retained while anything can still need
// it, namely
//
//   - undo of an active transaction (its chain of log records starts at
//     its begin LSN; a loser adopted by restart carries a conservative
//     zero, blocking release until it resolves), and
//   - log-backed backup references in the page recovery index — a page
//     whose registered "backup" is a TypeFormat or TypeFullImage log
//     record must keep that record readable for full single-page
//     recovery.
func (db *DB) archiveReleaseFloor() page.LSN {
	floor := db.log.EndLSN()
	if lsn, ok := db.txns.OldestActiveBeginLSN(); ok && lsn < floor {
		floor = lsn
	}
	db.pri.ForEachRange(func(lo, hi page.ID, e core.Entry) bool {
		if e.Backup.Kind == core.BackupFormat || e.Backup.Kind == core.BackupLogImage {
			if l := page.LSN(e.Backup.Loc); l < floor {
				floor = l
			}
		}
		return true
	})
	return floor
}

// ArchiveNow runs one synchronous lifecycle pass: any flushed-but-
// unarchived history is archived (segment-full or not), then segments
// recycle and archived history releases up to the current horizons.
// Deterministic alternative to waiting on the background loop; no-op
// without the lifecycle.
func (db *DB) ArchiveNow() error {
	if db.archiver == nil {
		return nil
	}
	return db.archiver.Step(true)
}

// ArchivePaused reports whether the archive device is unavailable and
// segment recycling is therefore suspended (the live log grows until the
// device recovers). Always false without the lifecycle.
func (db *DB) ArchivePaused() bool {
	return db.archiver != nil && db.archiver.Paused()
}

// Archive exposes the archive store for fault campaigns and inspection
// by experiments. Nil without the lifecycle.
func (db *DB) Archive() *archive.Store { return db.arch }
