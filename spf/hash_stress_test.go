package spf

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/hashindex"
	"repro/internal/page"
)

// TestConcurrentHashOpsWithInjectedPageFaults is the fault-injection
// parity check for the hash engine: the same persistent-corruption
// campaign the B-tree stress runs, aimed at every hash page class —
// directory, primary buckets, and overflow pages — while concurrent
// Insert/Update/Delete/Get/Scan traffic flows. Every fault must be
// detected on the validating read path (checksum or hash cross-check) and
// repaired online through the shared restore scheduler; the criteria are
// zero escalations, every model key intact, and a clean VerifyAll. The
// point of the test is that no hashindex-specific recovery code exists to
// be exercised: detection and repair below the Engine seam are the same
// paths the B-tree uses.
func TestConcurrentHashOpsWithInjectedPageFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	db, err := Open(Options{PageSize: 1024, DataSlots: 1 << 14, PoolFrames: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.CreateIndexKind("stress", KindHash)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 6
		keys    = 250 // per writer
		ops     = 1200
	)
	wkey := func(w, i int) []byte { return []byte(fmt.Sprintf("w%02d-%05d", w, i)) }
	// ~100-byte values push the chains past the directory's bucket
	// capacity at this page size, so overflow pages exist to corrupt.
	wval := func(s string) []byte {
		v := make([]byte, 100)
		copy(v, s)
		return v
	}

	tx := db.Begin()
	for w := 0; w < writers; w++ {
		for i := 0; i < keys; i += 2 {
			if err := ix.Insert(tx, wkey(w, i), wval("seed")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if st, err := ix.HashStats(); err != nil || st.Overflowed == 0 {
		t.Fatalf("no overflow chains to target (stats %+v, %v)", st, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	models := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			model := make(map[string]string, keys)
			for i := 0; i < keys; i += 2 {
				model[string(wkey(w, i))] = "seed"
			}
			models[w] = model
			tx := db.Begin()
			for op := 0; op < ops; op++ {
				i := rng.Intn(keys)
				k := wkey(w, i)
				v := fmt.Sprintf("w%d-%d", w, op)
				switch rng.Intn(5) {
				case 0, 1: // upsert
					var uerr error
					if _, ok := model[string(k)]; ok {
						uerr = ix.Update(tx, k, wval(v))
					} else {
						uerr = ix.Insert(tx, k, wval(v))
					}
					if uerr != nil {
						errs <- fmt.Errorf("worker %d upsert %q: %w", w, k, uerr)
						return
					}
					model[string(k)] = v
				case 2: // delete
					if _, ok := model[string(k)]; ok {
						if err := ix.Delete(tx, k); err != nil {
							errs <- fmt.Errorf("worker %d delete %q: %w", w, k, err)
							return
						}
						delete(model, string(k))
					}
				default:
					got, err := ix.Get(k)
					want, ok := model[string(k)]
					if ok != (err == nil) {
						errs <- fmt.Errorf("worker %d get %q: %v, model present=%v", w, k, err, ok)
						return
					}
					if err == nil && string(got[:len(want)]) != want {
						errs <- fmt.Errorf("worker %d get %q = %q, want %q", w, k, got, want)
						return
					}
				}
			}
			if err := db.Commit(tx); err != nil {
				errs <- fmt.Errorf("worker %d commit: %w", w, err)
			}
		}(w)
	}

	// A scanner sweeps the full key space continuously: bucket-order
	// enumeration descends through the directory and every chain, so it
	// keeps tripping over whatever the injector just damaged.
	done := make(chan struct{})
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := ix.Scan(nil, nil, func(Entry) bool { return true }); err != nil {
				errs <- fmt.Errorf("scan: %w", err)
				return
			}
		}
	}()

	// The injector corrupts stored images of live hash pages, explicitly
	// targeting each page class per round so coverage cannot depend on
	// luck: the directory (every descent crosses it), primary buckets,
	// and overflow pages (reached only by chain walks). A page pinned
	// this instant is skipped; the final revalidation pass below still
	// drives each late injection through detection and repair.
	var injDir, injBucket, injOverflow []PageID
	injectorWG := make(chan struct{})
	go func() {
		defer close(injectorWG)
		rng := rand.New(rand.NewSource(4242))
		classify := func() (dirs, buckets, overflow []PageID) {
			for _, id := range db.Pages() {
				h, err := db.pool.Fetch(id)
				if err != nil {
					continue // an earlier injection being repaired right now
				}
				h.RLock()
				typ := h.Page().Type()
				role := ""
				if typ == page.TypeHash {
					role, _ = hashindex.PageRole(h.Page().Payload())
				}
				h.RUnlock()
				h.Release()
				switch role {
				case "directory":
					dirs = append(dirs, id)
				case "bucket":
					buckets = append(buckets, id)
				case "overflow":
					overflow = append(overflow, id)
				}
			}
			return dirs, buckets, overflow
		}
		inject := func(candidates []PageID) (PageID, bool) {
			if len(candidates) == 0 {
				return 0, false
			}
			id := candidates[rng.Intn(len(candidates))]
			if err := db.EvictPage(id); err != nil {
				return 0, false // pinned by a concurrent descent
			}
			if err := db.CorruptPage(id); err != nil {
				return 0, false
			}
			return id, true
		}
		for round := 0; round < 2000; round++ {
			trafficDone := false
			select {
			case <-done:
				trafficDone = true
			default:
			}
			if trafficDone && len(injDir) >= 2 && len(injBucket) >= 5 && len(injOverflow) >= 2 {
				return
			}
			dirs, buckets, overflow := classify()
			if id, ok := inject(dirs); ok {
				injDir = append(injDir, id)
			}
			if id, ok := inject(buckets); ok {
				injBucket = append(injBucket, id)
			}
			if id, ok := inject(overflow); ok {
				injOverflow = append(injOverflow, id)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(done)
	scanWG.Wait()
	<-injectorWG
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if len(injDir) == 0 || len(injBucket) == 0 || len(injOverflow) == 0 {
		t.Fatalf("injector coverage too thin: %d directory, %d bucket, %d overflow faults",
			len(injDir), len(injBucket), len(injOverflow))
	}
	// Every injected page must come back clean through the validating
	// read path (repairing any corruption foreground traffic did not
	// already trip over and heal).
	all := append(append(append([]PageID(nil), injDir...), injBucket...), injOverflow...)
	for _, id := range all {
		for attempt := 0; ; attempt++ {
			err := db.EvictPage(id)
			if err == nil {
				break
			}
			if !errors.Is(err, buffer.ErrPinned) || attempt > 100 {
				t.Fatalf("evicting injected page %d: %v", id, err)
			}
			time.Sleep(time.Millisecond)
		}
		h, err := db.pool.Fetch(id)
		if err != nil {
			t.Fatalf("injected page %d not repaired: %v", id, err)
		}
		h.Release()
	}

	stats := db.Stats()
	if stats.Pool.ValidationFailures == 0 {
		t.Error("no fault was ever detected on the read path")
	}
	if stats.Pool.Recoveries == 0 {
		t.Error("no single-page recovery ran")
	}
	if stats.Pool.Escalations != 0 {
		t.Errorf("%d single-page failures escalated to media failures", stats.Pool.Escalations)
	}
	if stats.Recovery.Escalations != 0 {
		t.Errorf("%d recoveries escalated", stats.Recovery.Escalations)
	}

	for w := 0; w < writers; w++ {
		for k, want := range models[w] {
			got, err := ix.Get([]byte(k))
			if err != nil || string(got[:len(want)]) != want {
				t.Fatalf("final get %q = %q, %v (want %q)", k, got, err, want)
			}
		}
	}
	viols, err := ix.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("invariant violation after stress: %s", v)
	}
	t.Logf("injected: %d directory + %d bucket + %d overflow; detected=%d recovered=%d",
		len(injDir), len(injBucket), len(injOverflow),
		stats.Pool.ValidationFailures, stats.Pool.Recoveries)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
