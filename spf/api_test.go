package spf

import (
	"errors"
	"fmt"
	"testing"
)

// TestErrorTaxonomy pins the exported sentinel errors a server front end
// maps to wire status codes: lifecycle errors (ErrClosed, ErrCrashed),
// benign misses (ErrNotFound), and detection failures (ErrDetected) must
// all be distinguishable with errors.Is — never by string matching.
func TestErrorTaxonomy(t *testing.T) {
	db, err := Open(Options{PageSize: 1024, DataSlots: 1 << 12, PoolFrames: 256})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.CreateIndex("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := ix.Insert(tx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}

	// A miss is ErrNotFound — and ErrNotFound aliases ErrKeyNotFound, so
	// existing callers keep working.
	if _, err := ix.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: got %v, want ErrNotFound", err)
	}
	if !errors.Is(ErrNotFound, ErrKeyNotFound) || !errors.Is(ErrKeyNotFound, ErrNotFound) {
		t.Fatal("ErrNotFound and ErrKeyNotFound must alias")
	}
	// The miss is NOT a detection or repair failure.
	if _, err := ix.Get([]byte("absent")); errors.Is(err, ErrDetected) || errors.Is(err, ErrPageFailed) {
		t.Fatalf("miss classified as corruption: %v", err)
	}

	// Crash dominates: operations report ErrCrashed until Restart.
	db.Crash()
	if _, err := db.Fetch(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("after Crash: got %v, want ErrCrashed", err)
	}
	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatal(err)
	}

	// Close gates every public entry point with ErrClosed.
	if err := ndb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ndb.Fetch(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fetch after Close: got %v, want ErrClosed", err)
	}
	if _, err := ndb.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: got %v, want ErrClosed", err)
	}
	if _, _, err := ndb.BackupNow(); !errors.Is(err, ErrClosed) {
		t.Fatalf("BackupNow after Close: got %v, want ErrClosed", err)
	}
	if _, err := ndb.CreateIndex("u"); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateIndex after Close: got %v, want ErrClosed", err)
	}
	// Close stays idempotent.
	if err := ndb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsSnapshot checks that DB.Metrics gathers every subsystem and
// that the historical accessors are views of the same snapshot.
func TestMetricsSnapshot(t *testing.T) {
	db, err := Open(Options{
		PageSize: 1024, DataSlots: 1 << 12, PoolFrames: 256,
		Maintenance: MaintenanceOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ix, err := db.CreateIndex("users")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("user%06d", i))
		if err := ix.Insert(tx, k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := ix.Get([]byte(fmt.Sprintf("user%06d", i))); err != nil {
			t.Fatal(err)
		}
	}

	m := db.Metrics()
	if m.Txns.UserCommitted == 0 || m.Log.Appends == 0 || m.Pool.Hits == 0 {
		t.Fatalf("snapshot missing core activity: %+v", m)
	}
	if m.Pages == 0 || m.PRI.Pages == 0 {
		t.Fatalf("snapshot missing sizing: pages=%d pri=%+v", m.Pages, m.PRI)
	}
	if m.Crashed || m.Closed {
		t.Fatalf("healthy DB reports crashed=%v closed=%v", m.Crashed, m.Closed)
	}
	if len(m.Indexes) != 1 || m.Indexes[0].Name != "users" {
		t.Fatalf("index metrics: %+v", m.Indexes)
	}
	im := m.Indexes[0]
	if im.Splits == 0 {
		t.Fatalf("500 inserts split nothing: %+v", im)
	}
	if im.OptimisticHits == 0 {
		t.Fatalf("resident reads produced no optimistic hits: %+v", im)
	}

	// The historical accessors are views of the same source.
	s := db.Stats()
	if s.DBPages != db.Metrics().Pages || s.PRIPages != db.Metrics().PRI.Pages {
		t.Fatalf("Stats disagrees with Metrics: %+v", s)
	}
	splits, adoptions, rootGrows := ix.Counters()
	pm := ix.Metrics()
	if splits != pm.Splits || adoptions != pm.Adoptions || rootGrows != pm.RootGrows {
		t.Fatal("Index.Counters disagrees with Index.Metrics")
	}
	if got := db.MaintenanceStats(); got != db.Metrics().Maintenance &&
		got.FlushBatches < db.Metrics().Maintenance.FlushBatches {
		t.Fatalf("MaintenanceStats went backwards: %+v", got)
	}

	// Lifecycle flags surface in the snapshot after Close.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics(); !m.Closed {
		t.Fatal("Metrics after Close must report Closed")
	}
}

// TestIndexGetToZeroAlloc pins the server's hot read path: a resident GET
// through Index.GetTo with a reused destination buffer must not allocate.
func TestIndexGetToZeroAlloc(t *testing.T) {
	db, err := Open(Options{PageSize: 1024, DataSlots: 1 << 12, PoolFrames: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ix, err := db.CreateIndex("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 256; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		if err := ix.Insert(tx, k, []byte("value-payload-0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}

	key := []byte("key000123")
	buf := make([]byte, 0, 64)
	// Warm the descent (skeleton cache, frame residency).
	for i := 0; i < 10; i++ {
		if _, err := ix.GetTo(buf[:0], key); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	allocs := testing.AllocsPerRun(200, func() {
		v, err := ix.GetTo(buf[:0], key)
		if err != nil {
			t.Fatal(err)
		}
		got = v
	})
	if allocs != 0 {
		t.Fatalf("resident GetTo allocates %.1f/op, want 0", allocs)
	}
	if string(got) != "value-payload-0123456789" {
		t.Fatalf("wrong value %q", got)
	}

	// Get without a buffer still works (one alloc for the value is fine).
	if v, err := ix.Get(key); err != nil || string(v) != "value-payload-0123456789" {
		t.Fatalf("Get: %q, %v", v, err)
	}
}
