package spf

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/backup"
	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/hashindex"
	"repro/internal/maintenance"
	"repro/internal/page"
	"repro/internal/pagemap"
	"repro/internal/recovery"
	"repro/internal/restore"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Re-exported types so applications need only import this package.
type (
	// Txn is a transaction handle.
	Txn = txn.Txn
	// PageID identifies a logical page.
	PageID = page.ID
	// LSN is a log sequence number.
	LSN = page.LSN
	// FaultKind selects an injected fault mode.
	FaultKind = storage.FaultKind
	// Entry is one key/value pair visited by Index.Scan.
	Entry = btree.Entry
	// FailureClass is the paper's four-class failure taxonomy.
	FailureClass = core.FailureClass
)

// Re-exported fault kinds for injection experiments.
const (
	FaultReadError        = storage.FaultReadError
	FaultSilentCorruption = storage.FaultSilentCorruption
	FaultZeroPage         = storage.FaultZeroPage
	FaultTornWrite        = storage.FaultTornWrite
	FaultLostWrite        = storage.FaultLostWrite
)

// Errors surfaced by the engine. ErrPageFailed wraps unrecoverable
// single-page failures (escalation to media recovery required).
var (
	ErrPageFailed  = buffer.ErrPageFailed
	ErrKeyNotFound = btree.ErrKeyNotFound
	ErrKeyExists   = btree.ErrKeyExists
	ErrDetected    = btree.ErrDetected
	// ErrCommitLost reports a commit that cannot be proven durable
	// because a simulated crash intervened: its log records were wiped
	// with the volatile tail (restart rolls the transaction back) or, in
	// rare multi-crash races, durability simply cannot be established.
	// Callers must consult post-restart state before retrying.
	ErrCommitLost   = wal.ErrCommitLost
	ErrCrashed      = errors.New("spf: database is crashed; call Restart")
	ErrClosed       = errors.New("spf: database is closed")
	ErrUnknownIndex = errors.New("spf: unknown index")
	// ErrNotFound is the canonical "key does not exist" sentinel — the
	// benign miss every caller must distinguish from detection errors
	// (ErrDetected) and failed repairs (ErrPageFailed). It aliases
	// ErrKeyNotFound; both names satisfy errors.Is against either.
	ErrNotFound = btree.ErrKeyNotFound
)

// DB is a single-device transactional storage engine with single-page
// failure detection and recovery.
type DB struct {
	opts Options

	dev   *storage.Device
	store *backup.Store
	log   *wal.Manager
	pmap  *pagemap.Map
	pool  *buffer.Pool
	txns  *txn.Manager
	pri   *core.PRI
	rec   *core.Recoverer
	res   *backup.Resolver
	sched *restore.Scheduler   // nil when Options.Restore.Disabled (or SPR off)
	maint *maintenance.Service // nil unless Options.Maintenance.Enabled

	// Log lifecycle (nil unless Options.Lifecycle.Enabled): arch is the
	// durable log archive (shared across Restart/RecoverMedia), archiver
	// the per-DB driver that archives, recycles, and releases.
	arch     *archive.Store
	archiver *archive.Archiver

	mu           sync.Mutex
	metaID       page.ID
	engines      map[string]Engine
	updateCounts map[page.ID]int
	backupsDue   map[page.ID]bool
	crashed      bool
	closed       bool

	// Instant-restart needs-redo marks: pages whose on-disk image may be
	// missing the tail of its per-page chain after a system failure, keyed
	// to the chain head the image must reach. redoCount mirrors
	// len(redoMarks) so paths outside restart pay one atomic load.
	redoMu     sync.Mutex
	redoMarks  map[page.ID]page.LSN
	redoCount  atomic.Int64
	redoMarked atomic.Int64
	redoFast   atomic.Int64
	redoFull   atomic.Int64
}

// RestartRedoStats counts on-demand restart-redo activity on this DB.
type RestartRedoStats struct {
	// Marked is how many pages the last restart preparation flagged as
	// needs-redo.
	Marked int64
	// FastRedos counts marked pages redone from their on-disk image —
	// only the missing chain tail was replayed, no backup was touched.
	FastRedos int64
	// Fallbacks counts marked pages whose image could not serve as the
	// replay base (unreadable, corrupt, or off-chain) — a single-page
	// failure inside system recovery, repaired by full single-page
	// recovery from the page's registered backup.
	Fallbacks int64
	// Pending is how many marks have not been redone yet.
	Pending int64
}

// RestartRedoStats returns a snapshot of the on-demand restart-redo
// counters. All-zero for a DB that was not produced by an instant Restart.
// Delegates to Metrics.
func (db *DB) RestartRedoStats() RestartRedoStats { return db.Metrics().RestartRedo }

// installRedoMarks records the needs-redo set produced by restart
// preparation. Called before the first fetch can observe the new DB.
func (db *DB) installRedoMarks(marks []recovery.RedoPage) {
	db.redoMu.Lock()
	db.redoMarks = make(map[page.ID]page.LSN, len(marks))
	for _, m := range marks {
		db.redoMarks[m.ID] = m.Head
	}
	db.redoCount.Store(int64(len(db.redoMarks)))
	db.redoMu.Unlock()
	db.redoMarked.Store(int64(len(marks)))
}

// redoMark reports whether id is marked needs-redo and the chain head its
// image must reach.
func (db *DB) redoMark(id page.ID) (page.LSN, bool) {
	if db.redoCount.Load() == 0 {
		return page.ZeroLSN, false
	}
	db.redoMu.Lock()
	defer db.redoMu.Unlock()
	head, ok := db.redoMarks[id]
	return head, ok
}

// clearRedoMark drops id's needs-redo mark once the page is known healthy
// (its repair completed, whichever path ran it).
func (db *DB) clearRedoMark(id page.ID) {
	if db.redoCount.Load() == 0 {
		return
	}
	db.redoMu.Lock()
	if _, ok := db.redoMarks[id]; ok {
		delete(db.redoMarks, id)
		db.redoCount.Add(-1)
	}
	db.redoMu.Unlock()
}

// Open creates a fresh database.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{
		opts: opts,
		dev: storage.NewDevice(storage.Config{
			PageSize: opts.PageSize, Slots: opts.DataSlots,
			Profile: opts.DataProfile, Seed: opts.Seed,
		}),
		log: wal.NewManagerOpts(wal.Options{
			Profile:           opts.LogProfile,
			GroupCommitWindow: opts.GroupCommitWindow,
		}),
		pmap:         pagemap.New(opts.WriteMode, opts.DataSlots),
		pri:          core.NewPRI(),
		engines:      make(map[string]Engine),
		updateCounts: make(map[page.ID]int),
		backupsDue:   make(map[page.ID]bool),
	}
	db.store = backup.NewStore(storage.NewDevice(storage.Config{
		PageSize: opts.PageSize, Slots: opts.BackupSlots,
		Profile: opts.BackupProfile, Seed: opts.Seed + 1,
	}))
	db.txns = txn.NewManager(db.log)
	db.txns.SetUndoer(undoer{db})
	db.res = &backup.Resolver{Store: db.store, Log: db.log, PageSize: opts.PageSize, Data: db.dev}
	db.rec = core.NewRecoverer(db.log, db.pri, db.res, applier{})
	db.pool = buffer.NewPool(buffer.Config{
		Capacity: opts.PoolFrames, Shards: opts.PoolShards,
		Device: db.dev, Map: db.pmap, Log: db.log,
		Hooks: db.hooks(),
	})
	db.startRestore()
	db.initLifecycle(nil)

	// Bootstrap: the meta page holding the index registry.
	st := db.txns.BeginSystem()
	h, err := db.AllocateNode(st, page.TypeMeta, nil)
	if err != nil {
		db.stopRestore()
		return nil, fmt.Errorf("spf: bootstrapping meta page: %w", err)
	}
	db.metaID = h.ID()
	h.Release()
	if err := st.Commit(); err != nil {
		db.stopRestore()
		return nil, err
	}
	if _, err := db.Checkpoint(); err != nil {
		db.stopRestore()
		return nil, err
	}
	db.startMaintenance()
	db.startLifecycle()
	return db, nil
}

// startRestore launches the prioritized repair scheduler. Called once per
// DB, right after the buffer pool exists, from the single goroutine
// constructing the DB — so it is running before any fetch can fault.
func (db *DB) startRestore() {
	if db.opts.DisableSinglePageRecovery || db.opts.Restore.Disabled {
		return
	}
	db.sched = restore.New(restore.Config{
		Workers:      db.opts.Restore.Workers,
		RetryBackoff: db.opts.Restore.RetryBackoff,
	}, restore.Deps{
		Repair: db.performRepair,
		Busy:   func(err error) bool { return errors.Is(err, buffer.ErrPinned) },
	})
	db.sched.Start()
}

// stopRestore quiesces the scheduler: queued repairs fail with
// restore.ErrStopped (waking their waiters — the maintenance campaign
// among them), the in-flight repair completes, and every worker is joined.
// Crash, Close, and FailDevice call it BEFORE stopMaintenance (the scrub
// campaign parks on repair futures; failing them first lets the campaign
// goroutine reach its own quit check) and before any log truncation — a
// worker mid-repair reads the log and appends recovery records, so the
// same WAL-safety ordering the maintenance service observes applies here.
func (db *DB) stopRestore() {
	if db.sched != nil {
		db.sched.Stop()
	}
}

// performRepair is the scheduler workers' repair routine: it makes the
// page healthy end to end, whatever path detected the failure.
//
//   - A scrub finding has a (possibly clean) buffered copy of a damaged
//     device slot: evict it so the validating re-read sees the device. A
//     page pinned by concurrent readers cannot be evicted this instant —
//     that is congestion, not failure, so the error reports busy and the
//     scheduler requeues the ticket with backoff instead of dropping it.
//   - A foreground fetch fault (or an on-demand media restore) has no
//     resident copy; eviction is a no-op.
//
// The re-read runs through FetchRepair — the inline-recovery fetch — so
// the worker's own read cannot re-enter the scheduler and deadlock on the
// ticket it is executing. Detection plus recovery then happen exactly as
// on the pre-scheduler read path (Fig. 8: validate, Recover hook,
// relocate, retire), and the recovered page is installed dirty for
// write-back to persist.
func (db *DB) performRepair(id page.ID) error {
	if db.isCrashed() {
		return ErrCrashed
	}
	if err := db.pool.Evict(id); err != nil && !errors.Is(err, buffer.ErrNotResident) {
		return err
	}
	h, err := db.pool.FetchRepair(id)
	if err != nil {
		return err
	}
	h.Release()
	// The page is healthy now whichever branch the validating read took —
	// a page fully written before a crash passes validation without ever
	// invoking the Recover hook, so the needs-redo mark is retired here,
	// not only inside recoverPage.
	db.clearRedoMark(id)
	return nil
}

// startMaintenance launches the background maintenance service when the
// options ask for it. Called once per DB, after bootstrap/recovery traffic
// has settled, from the single goroutine constructing the DB.
func (db *DB) startMaintenance() {
	mo := db.opts.Maintenance
	if !mo.Enabled {
		return
	}
	db.maint = maintenance.New(maintenance.Config{
		FlushWorkers:        mo.FlushWorkers,
		FlushBatchPages:     mo.FlushBatchPages,
		FlushInterval:       mo.FlushInterval,
		DirtyHighWatermark:  mo.DirtyHighWatermark,
		ScrubPagesPerSecond: mo.ScrubPagesPerSecond,
		ScrubBatchPages:     mo.ScrubBatchPages,
	}, maintenance.Deps{
		Pool:        db.pool,
		Dev:         db.dev,
		MappedSlots: db.pmap.MappedSlots,
		Repair:      db.repairLatent,
	})
	db.maint.Start()
}

// stopMaintenance quiesces the service (idempotent; in-flight batches
// complete). Crash and Close call it before touching the log or the pool,
// so background write-back is quiesced exactly like foreground appenders.
func (db *DB) stopMaintenance() {
	if db.maint != nil {
		db.maint.Stop()
	}
}

// repairLatent routes a latent failure the scrub campaign found through
// the repair scheduler at background priority: the campaign's finding
// never jumps ahead of a foreground fault, a foreground fault on the same
// page promotes this very ticket (one replay serves both), and a page
// momentarily pinned by readers is requeued with backoff inside the
// scheduler instead of being dropped after a retry budget. The call waits
// for the repair's outcome so the campaign's repaired/escalated tallies
// stay accurate.
//
// With the scheduler disabled the repair runs inline: drop any buffered
// copy, then a validating re-read detects the damage and recovers the
// page, exactly as a foreground read would (Fig. 8).
func (db *DB) repairLatent(id page.ID) error {
	if db.isCrashed() {
		return ErrCrashed
	}
	if sched := db.sched; sched != nil {
		return sched.EnqueueCost(id, restore.Background, db.chainCost(id)).Wait()
	}
	for attempt := 0; ; attempt++ {
		if err := db.performRepair(id); err == nil {
			return nil
		} else if !errors.Is(err, buffer.ErrPinned) || attempt >= 500 {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// hooks wires the buffer pool to detection, recovery, and PRI maintenance.
func (db *DB) hooks() buffer.Hooks {
	h := buffer.Hooks{
		CompleteWrite: db.completeWrite,
		OnMarkDirty:   db.onMarkDirty,
		// The scheduler is created after the pool, so resolve it per call.
		OnReadRetry: func(page.ID) {
			if s := db.sched; s != nil {
				s.NoteReadRetry()
			}
		},
	}
	if !db.opts.DisablePageLSNCheck && !db.opts.DisableSinglePageRecovery {
		h.Validate = db.validatePage
	}
	if !db.opts.DisableSinglePageRecovery {
		h.Recover = db.recoverPage
		if !db.opts.Restore.Disabled {
			h.RepairPage = db.repairPageUrgent
		}
	}
	return h
}

// repairPageUrgent is the RepairPage pool hook: a foreground fetch hit a
// validation failure, so the page's repair is (enqueued if needed and)
// promoted to urgent priority, and the fetch parks on the shared per-page
// future — N concurrent faulters of one page trigger exactly one chain
// replay. Before the scheduler starts (engine bootstrap, restart redo's
// first moments) the hook reports unavailable and the pool recovers
// inline.
func (db *DB) repairPageUrgent(id page.ID) error {
	sched := db.sched
	if sched == nil {
		return buffer.ErrRepairUnavailable
	}
	return sched.Enqueue(id, restore.Urgent).Wait()
}

// validatePage is the PageLSN cross-check of §5.2.2: a page read from the
// database must carry at least the LSN the page recovery index recorded at
// its last completed write. An OLDER page is a lost write — the only
// failure mode checksums cannot catch. A NEWER page is not a page failure
// at all: it means the PRI update was lost in a crash (the page write
// completed, its log record did not), exactly the condition restart redo
// repairs per Fig. 12.
func (db *DB) validatePage(pg *page.Page) error {
	entry, err := db.pri.Get(pg.ID())
	if err != nil {
		return nil // no expectation recorded
	}
	if entry.LastLSN != page.ZeroLSN && pg.LSN() < entry.LastLSN {
		return fmt.Errorf("PageLSN %d below page recovery index expectation %d (lost write)",
			pg.LSN(), entry.LastLSN)
	}
	return nil
}

// recoverPage adapts the single-page recoverer to the buffer pool hook.
//
// A page marked needs-redo by instant restart gets the fast path first:
// its current on-disk image is a free backup as of its own PageLSN
// (§5.2.1 — any older version plus the log chain suffices), so only the
// missing chain tail between the image and the crash-time chain head is
// replayed. If the image cannot serve as the replay base — unreadable,
// corrupt, or off-chain — that is a single-page failure inside system
// recovery, and the page falls through to full single-page recovery from
// its registered backup, exactly as any other failed page would.
func (db *DB) recoverPage(id page.ID) (*page.Page, error) {
	if head, ok := db.redoMark(id); ok {
		if pg, err := db.redoFromImage(id, head); err == nil {
			db.redoFast.Add(1)
			db.clearRedoMark(id)
			return pg, nil
		}
		db.redoFull.Add(1)
	}
	pg, _, err := db.rec.RecoverPage(id)
	if err == nil {
		db.clearRedoMark(id)
	}
	return pg, err
}

// redoFromImage replays the missing tail of a page's per-page chain onto
// its current on-disk image, bringing it from its PageLSN up to head (the
// newest surviving log record for the page). Every step runs the §5.1.4
// defensive sequence check; any mismatch means the image is not a true
// historical version and the caller must recover from a real backup.
func (db *DB) redoFromImage(id page.ID, head page.LSN) (*page.Page, error) {
	phys, ok := db.pmap.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("spf: restart redo of page %d: no device slot", id)
	}
	buf := make([]byte, db.opts.PageSize)
	if err := db.dev.ReadInto(phys, buf); err != nil {
		return nil, err
	}
	pg, err := page.DecodeFor(id, buf)
	if err != nil {
		return nil, err
	}
	if pg.LSN() > head {
		return nil, fmt.Errorf("spf: restart redo of page %d: image at LSN %d beyond chain head %d",
			id, pg.LSN(), head)
	}
	stack, err := db.log.WalkPageChain(head, pg.LSN(), id)
	if err != nil {
		return nil, err
	}
	for i := len(stack) - 1; i >= 0; i-- {
		rec := stack[i]
		if rec.PagePrevLSN != pg.LSN() {
			return nil, fmt.Errorf("spf: restart redo of page %d out of sequence at LSN %d: record expects PageLSN %d, image has %d",
				id, rec.LSN, rec.PagePrevLSN, pg.LSN())
		}
		if err := (applier{}).ApplyRedo(rec, pg); err != nil {
			return nil, err
		}
		pg.SetLSN(rec.LSN)
	}
	if pg.LSN() != head {
		return nil, fmt.Errorf("spf: restart redo of page %d reached LSN %d, chain head is %d",
			id, pg.LSN(), head)
	}
	return pg, nil
}

// chainCost estimates a page's repair cost as its per-page chain length;
// within one priority band the scheduler pops shorter chains first. Zero
// (unknown) when the page has no chain entry.
func (db *DB) chainCost(id page.ID) int64 {
	if ci, ok := db.log.ChainHead(id); ok {
		return ci.Length
	}
	return 0
}

// onMarkDirty counts page updates for the backup-every-N policy ("the
// number of updates can be counted within the page, incremented whenever
// the PageLSN changes", §6) and prods the maintenance flushers when the
// pool's dirty count crosses their watermark.
func (db *DB) onMarkDirty(id page.ID) {
	if m := db.maint; m != nil {
		m.NotifyDirty()
	}
	if db.opts.BackupEveryNUpdates <= 0 {
		return
	}
	db.mu.Lock()
	db.updateCounts[id]++
	if db.updateCounts[id] >= db.opts.BackupEveryNUpdates {
		db.backupsDue[id] = true
		db.updateCounts[id] = 0
	}
	db.mu.Unlock()
}

// completeWrite is the Fig. 11 sequence: after a dirty page reached the
// database, update the page recovery index and describe the update in log
// records, which the buffer pool appends — immediately on per-page flushes
// (before the frame may be evicted), or as one grouped reserve-fill append
// per flush batch. The records are system-transaction-style records that
// need no log force (§5.2.4) and double as logged completed writes
// (§5.1.2); the pool invokes this hook under per-frame flush
// serialization, so each page's index updates happen in write order.
func (db *DB) completeWrite(info buffer.WriteInfo) []*wal.Record {
	if db.opts.DisableSinglePageRecovery {
		return nil
	}
	return db.completedWrite(info, nil)
}

// completedWrite applies one completed write to the in-memory page
// recovery index and appends the log records describing it to recs
// (SetBackup first for a copy-on-write supersession, then the completed
// write itself).
func (db *DB) completedWrite(info buffer.WriteInfo, recs []*wal.Record) []*wal.Record {
	// Copy-on-write: the superseded slot is a ready-made page backup.
	if info.HadPrev && db.opts.WriteMode == pagemap.CopyOnWrite {
		prevEntry, err := db.pri.Get(info.Page)
		if err == nil {
			ref := core.BackupRef{
				Kind: core.BackupDataSlot,
				Loc:  uint64(info.Prev),
				AsOf: prevEntry.LastLSN,
			}
			old, err := db.pri.SetBackup(info.Page, ref)
			if err == nil {
				recs = append(recs, &wal.Record{
					Type: wal.TypePRIUpdate, PageID: info.Page,
					Payload: core.EncodeSetBackup(ref),
				})
				db.releaseBackup(old)
			}
		}
	}
	if _, err := db.pri.SetLastLSN(info.Page, info.PageLSN); err != nil {
		db.pri.Set(info.Page, core.Entry{LastLSN: info.PageLSN})
	}
	return append(recs, &wal.Record{
		Type: wal.TypePRIUpdate, PageID: info.Page,
		Payload: core.EncodeWriteComplete(core.WriteCompletePayload{
			PageLSN: info.PageLSN, Dest: info.Dest,
			Prev: info.Prev, HadPrev: info.HadPrev,
		}),
	})
}

// releaseBackup frees the resource behind a superseded backup reference
// ("when a new backup page is taken ... the old backup page may be freed
// and the page recovery index gives fast access to its identifier",
// §5.2.2).
func (db *DB) releaseBackup(old core.BackupRef) {
	switch old.Kind {
	case core.BackupPage:
		db.store.FreeSlot(old.Loc)
	case core.BackupDataSlot:
		// Best effort: the slot may have been retired after a failure.
		_ = db.pmap.FreeSlot(storage.PhysID(old.Loc))
	}
}

// undoer adapts the engine to the transaction manager's rollback; like
// redo, undo routes on the record payload's opcode namespace.
type undoer struct{ db *DB }

func (u undoer) Undo(t *txn.Txn, rec *wal.Record) error {
	if hashindex.IsHashOp(rec.Payload) {
		return hashindex.Compensate(t, u.db, rec)
	}
	return btree.Compensate(t, u.db, rec)
}

// AllocateNode implements btree.Pager: it allocates a logical page,
// installs it dirty in the pool, logs its format record under t, and
// registers that record as the page's backup in the page recovery index.
func (db *DB) AllocateNode(t *txn.Txn, typ page.Type, initialPayload []byte) (*buffer.Handle, error) {
	if err := db.opErr(); err != nil {
		return nil, err
	}
	id := db.pmap.AllocateLogical()
	h, err := db.pool.Create(id, typ)
	if err != nil {
		return nil, err
	}
	h.Lock()
	defer h.Unlock()
	if err := h.Page().SetPayload(initialPayload); err != nil {
		h.Release()
		return nil, err
	}
	lsn, err := t.Log(&wal.Record{
		Type:    wal.TypeFormat,
		PageID:  id,
		Payload: backup.FormatPayload(typ, initialPayload),
	})
	if err != nil {
		h.Release()
		return nil, err
	}
	h.Page().SetLSN(lsn)
	h.MarkDirty(lsn)
	if !db.opts.DisableSinglePageRecovery {
		db.pri.Set(id, core.Entry{
			Backup:  core.BackupRef{Kind: core.BackupFormat, Loc: uint64(lsn), AsOf: lsn},
			LastLSN: lsn,
		})
	}
	return h, nil
}

// Fetch implements btree.Pager via the validating buffer pool.
func (db *DB) Fetch(id page.ID) (*buffer.Handle, error) {
	if err := db.opErr(); err != nil {
		return nil, err
	}
	return db.pool.Fetch(id)
}

// BeginSystem implements btree.Pager.
func (db *DB) BeginSystem() *txn.Txn { return db.txns.BeginSystem() }

// Begin starts a user transaction.
func (db *DB) Begin() *Txn { return db.txns.Begin() }

// Commit commits a transaction and runs any page backups the
// backup-every-N-updates policy scheduled.
func (db *DB) Commit(t *Txn) error {
	if err := t.Commit(); err != nil {
		return err
	}
	return db.runDueBackups()
}

func (db *DB) isCrashed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.crashed
}

// Err reports the DB's lifecycle state without touching any data: nil
// while the database is serving, ErrCrashed after Crash or FailDevice
// (call Restart/RecoverMedia), ErrClosed after Close. Servers use it to
// health-check without issuing an operation.
func (db *DB) Err() error { return db.opErr() }

// opErr gates public operations on the DB's lifecycle state: ErrCrashed
// after Crash/FailDevice (call Restart/RecoverMedia), ErrClosed after a
// clean Close. Crash dominates — a crashed DB that was then Closed still
// reports ErrCrashed, since Restart remains the way forward.
func (db *DB) opErr() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch {
	case db.crashed:
		return ErrCrashed
	case db.closed:
		return ErrClosed
	default:
		return nil
	}
}

// CreateIndex creates a named index of the kind Options.IndexKind selects
// (the Foster B-tree by default).
func (db *DB) CreateIndex(name string) (*Index, error) {
	return db.CreateIndexKind(name, db.opts.IndexKind)
}

// CreateIndexKind creates a named index backed by the given engine. All
// engines share the pool, WAL, maintenance, and restore paths; the kind
// only picks how keys are organized on pages.
func (db *DB) CreateIndexKind(name string, kind IndexKind) (*Index, error) {
	db.mu.Lock()
	if db.crashed {
		db.mu.Unlock()
		return nil, ErrCrashed
	}
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := db.engines[name]; ok {
		db.mu.Unlock()
		return nil, fmt.Errorf("spf: index %q already exists", name)
	}
	// Reserve the name while the engine is built; the entry is replaced or
	// removed below. The mutex cannot be held across engine construction:
	// AllocateNode and the dirty-page hook take it too.
	db.engines[name] = nil
	db.mu.Unlock()
	fail := func(err error) (*Index, error) {
		db.mu.Lock()
		delete(db.engines, name)
		db.mu.Unlock()
		return nil, err
	}

	st := db.txns.BeginSystem()
	eng, err := db.createEngine(st, name, kind)
	if err != nil {
		_ = st.Abort()
		return fail(err)
	}
	// Register in the meta page. The registry maps name → root page; the
	// root page's type tags the engine, so reopen needs no catalog change.
	h, err := db.pool.Fetch(db.metaID)
	if err != nil {
		return fail(err)
	}
	h.Lock()
	err = db.logMetaPut(st, h, name, eng.Root(), page.InvalidID)
	h.Unlock()
	h.Release()
	if err != nil {
		return fail(err)
	}
	if err := st.Commit(); err != nil {
		return fail(err)
	}
	db.mu.Lock()
	db.engines[name] = eng
	db.mu.Unlock()
	return &Index{db: db, eng: eng}, nil
}

func (db *DB) logMetaPut(t *txn.Txn, h *buffer.Handle, name string, root, oldRoot page.ID) error {
	op := btree.EncodeMetaPut(name, root, oldRoot)
	lsn, err := t.Log(&wal.Record{
		Type: wal.TypeUpdate, PageID: h.ID(), PagePrevLSN: h.Page().LSN(), Payload: op,
	})
	if err != nil {
		return err
	}
	if err := (applier{}).ApplyRedo(&wal.Record{Payload: op}, h.Page()); err != nil {
		return err
	}
	h.Page().SetLSN(lsn)
	h.MarkDirty(lsn)
	return nil
}

// Index returns a previously created index.
func (db *DB) Index(name string) (*Index, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return nil, ErrCrashed
	}
	if db.closed {
		return nil, ErrClosed
	}
	if eng, ok := db.engines[name]; ok && eng != nil {
		return &Index{db: db, eng: eng}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
}

// Indexes lists the registered index names from the meta page.
func (db *DB) Indexes() ([]string, error) {
	h, err := db.Fetch(db.metaID)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	h.RLock()
	defer h.RUnlock()
	reg, err := btree.DecodeRegistry(h.Page().Payload())
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Index is a named key-value index backed by one of the storage engines
// (Foster B-tree or linear-hash table) over the shared SPF machinery.
type Index struct {
	db  *DB
	eng Engine
}

// Kind reports which engine backs this index.
func (ix *Index) Kind() IndexKind { return ix.eng.Kind() }

// Insert adds key=val under t.
func (ix *Index) Insert(t *Txn, key, val []byte) error { return ix.eng.Insert(t, key, val) }

// Update replaces the value of key under t.
func (ix *Index) Update(t *Txn, key, val []byte) error { return ix.eng.Update(t, key, val) }

// Delete removes key under t (logically, via a ghost record).
func (ix *Index) Delete(t *Txn, key []byte) error { return ix.eng.Delete(t, key) }

// Get returns the value for key (ErrNotFound when absent).
func (ix *Index) Get(key []byte) ([]byte, error) { return ix.GetTo(nil, key) }

// GetTo is Get appending the value to dst and returning the extended
// slice, so a caller reusing its buffer across lookups (the server's hot
// read path) pays zero allocations on a resident hit. dst may be nil.
func (ix *Index) GetTo(dst, key []byte) ([]byte, error) { return ix.eng.GetTo(dst, key) }

// Scan visits live entries in [start, end). B-tree indexes emit key
// order; hash indexes emit bucket order (sorted within each bucket).
func (ix *Index) Scan(start, end []byte, fn func(Entry) bool) error {
	return ix.eng.Scan(start, end, fn)
}

// Verify exhaustively checks the index's structural invariants and returns
// human-readable violations (empty = clean). It is an offline audit: it
// latches one page at a time and assumes a quiesced index — a structural
// change landing between two page visits can surface as a transient
// violation on a healthy index.
func (ix *Index) Verify() ([]string, error) { return ix.eng.Verify() }

// TreeStats returns structural statistics of a B-tree index; it fails for
// other engine kinds (use HashStats for hash indexes).
func (ix *Index) TreeStats() (btree.Stats, error) {
	if e, ok := ix.eng.(btreeEngine); ok {
		return e.tree.WalkStats()
	}
	return btree.Stats{}, fmt.Errorf("spf: TreeStats on %v index %q", ix.eng.Kind(), ix.eng.Name())
}

// HashStats returns structural statistics of a hash index; it fails for
// other engine kinds.
func (ix *Index) HashStats() (hashindex.Stats, error) {
	if e, ok := ix.eng.(hashEngine); ok {
		return e.table.WalkStats()
	}
	return hashindex.Stats{}, fmt.Errorf("spf: HashStats on %v index %q", ix.eng.Kind(), ix.eng.Name())
}

// Root exposes the root page ID (stable): the B-tree root or the hash
// directory page.
func (ix *Index) Root() PageID { return ix.eng.Root() }

// Counters reports cumulative structural changes (foster splits,
// adoptions, root growths).
// Delegates to Metrics.
func (ix *Index) Counters() (splits, adoptions, rootGrows int64) {
	m := ix.Metrics()
	return m.Splits, m.Adoptions, m.RootGrows
}
