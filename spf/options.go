// Package spf is a transactional storage engine built to reproduce Graefe
// and Kuno's "Definition, Detection, and Recovery of Single-Page Failures,
// a Fourth Class of Database Failures" (PVLDB 5(7), 2012).
//
// The engine provides named indexes over a simulated, fault-injectable
// storage device, with write-ahead logging, ARIES-style restart recovery,
// full-backup media recovery, and — the paper's contribution — a page
// recovery index enabling single-page recovery: a page that fails its
// read-path checks is rebuilt from its most recent backup plus the
// per-page log chain while the reading transaction merely waits, instead
// of escalating to a media failure.
//
// # Choosing an engine
//
// Two storage engines implement the index surface behind one seam:
// KindBTree (a Foster B-tree, the default) and KindHash (a page-based
// linear-hashing table). Select per database with Options.IndexKind or
// per index with DB.CreateIndexKind; DB.CreateIndex uses the database
// default. Choose the B-tree when range Scans matter or keys are
// retrieved in order — it keeps keys sorted globally and its optimistic
// resident-read path is the fastest point lookup in the system. Choose
// the hash engine for point-op-dominated working sets where ordered
// iteration is incidental: lookups are O(1) directory→bucket hops
// independent of key count, and Scan still works but enumerates in
// bucket order (sorted only within a bucket). Everything below the seam
// is shared and engine-blind — detection (checksums plus per-engine
// cross-checks: fence keys for the B-tree, bucket/level/chain stamps for
// the hash table), single-page repair, instant restart, media restore,
// scrubbing, and the restore scheduler treat both engines' pages
// identically, and both kinds can coexist in one database inside one
// transaction. internal/enginebench (BenchmarkE34/E35 at the repo root)
// measures the two side by side on identical seeded workloads.
//
// Restart after a system failure is instant (after Sauer et al.): instead
// of replaying the log forward before opening for business, Restart marks
// every page that was dirty at the crash "needs-redo" with its per-page
// chain head — an O(active pages) preparation — queues the backlog for
// background replay ordered by chain length, and returns. The first read
// of a marked page pays only that page's chain replay, served through the
// same single-page-recovery machinery that handles lost writes: the
// current disk image acts as a free backup as of its own PageLSN, and a
// damaged image falls back to full recovery from a real backup — a nested
// single-page failure repaired inside system recovery. The synchronous
// forward-scan redo remains available behind Options.Restore.Disabled.
package spf

import (
	"time"

	"repro/internal/iosim"
	"repro/internal/pagemap"
)

// Options configures a database.
type Options struct {
	// PageSize is the page size in bytes (default 8192).
	PageSize int
	// DataSlots is the data device capacity in pages (default 65536).
	DataSlots int
	// BackupSlots is the backup device capacity in pages (default
	// 2*DataSlots).
	BackupSlots int
	// PoolFrames is the buffer pool size in frames (default 1024).
	PoolFrames int
	// PoolShards is the number of buffer-pool shards, rounded up to a
	// power of two. Zero selects max(8, GOMAXPROCS). More shards reduce
	// contention between concurrent page fetches.
	PoolShards int
	// WriteMode selects in-place or copy-on-write page writes. Copy-on-
	// write retains each page's pre-move image as an implicit backup
	// (paper §5.2.1).
	WriteMode pagemap.Mode
	// DataProfile, LogProfile, BackupProfile select the simulated I/O
	// cost models. Zero value charges nothing (unit-test speed).
	DataProfile   iosim.Profile
	LogProfile    iosim.Profile
	BackupProfile iosim.Profile
	// GroupCommitWindow is how long a committing transaction waits for
	// concurrent commits to coalesce into one log flush. Zero (the
	// default) flushes synchronously per commit: deterministic, exactly
	// one force per user commit (the §5.1.5 accounting). Nonzero trades
	// a bounded commit latency for far fewer log flushes under highly
	// concurrent commit load; commits interrupted by a simulated Crash
	// report wal.ErrCommitLost instead of claiming durability. The window
	// survives Restart (the log manager carries it across crashes).
	GroupCommitWindow time.Duration
	// SinglePageRecovery enables the page recovery index and the
	// recovery path (default on via Open; set DisableSinglePageRecovery
	// to model a traditional engine that escalates to media failure —
	// the Fig. 1 baseline).
	DisableSinglePageRecovery bool
	// DisablePageLSNCheck turns off the PageLSN cross-check against the
	// page recovery index on every buffer-pool read (ablation A2). Lost
	// writes then go undetected until a fence check or checksum fails.
	DisablePageLSNCheck bool
	// BackupEveryNUpdates takes an explicit per-page backup after a page
	// has accumulated N updates (0 disables the policy). Bounds the
	// per-page log chain and hence single-page recovery time (§6).
	BackupEveryNUpdates int
	// Maintenance configures the background maintenance service: async
	// dirty-page write-back with grouped PRI logging, plus the continuous
	// scrub campaign that detects and repairs latent single-page failures
	// online. Disabled unless Maintenance.Enabled is set; the service
	// survives Restart and RecoverMedia (a fresh one is started for the
	// recovered database) and is quiesced deterministically by Close,
	// Crash, and FailDevice.
	Maintenance MaintenanceOptions
	// Restore configures the prioritized repair scheduler that all
	// single-page repairs route through: foreground fetch faults enqueue
	// at urgent priority (promoting an already-queued page), scrub
	// findings and bulk media restore at background priority, and
	// concurrent faulters of one page coalesce onto a single replay. On
	// by default whenever single-page recovery is enabled; survives
	// Restart and RecoverMedia and is quiesced deterministically by
	// Close, Crash, and FailDevice (workers joined before the log
	// truncates).
	Restore RestoreOptions
	// Lifecycle configures the bounded log lifecycle: a background
	// archiver drains flushed history into a sorted, page-partitioned log
	// archive, live segments recycle once the checkpoint redo horizon and
	// the archive both cover them, and archived history is garbage-
	// collected once a newer full backup set (plus the engine's undo and
	// log-backed-backup floors) passes it. Disabled unless
	// Lifecycle.Enabled is set — the live log then grows without bound,
	// the pre-lifecycle behavior.
	Lifecycle LifecycleOptions
	// IndexKind is the engine CreateIndex builds: KindBTree (the zero
	// value — ordered keys, range scans) or KindHash (linear hashing,
	// point-op oriented). CreateIndexKind overrides it per index; both
	// engines share every layer below the Engine seam.
	IndexKind IndexKind
	// Seed makes fault injection reproducible.
	Seed int64
}

// LifecycleOptions tunes the log lifecycle (internal/archive). The zero
// value of every field but Enabled selects the defaults noted per field.
type LifecycleOptions struct {
	// Enabled turns the lifecycle on: the archiver runs, live WAL
	// segments recycle behind the checkpoint horizon, and per-page chain
	// replays transparently fall back to the archive for recycled
	// history.
	Enabled bool
	// SegmentBytes is the archive run granularity: a run is sealed once
	// this many flushed-but-unarchived log bytes accumulate (default
	// 256 KiB). Small values bound live-log memory tightly at the cost of
	// more, smaller runs.
	SegmentBytes int64
	// Interval is the background archiver cadence (default 25ms).
	// Negative disables the loop entirely: the lifecycle then advances
	// only on explicit ArchiveNow calls (deterministic tests) and on the
	// kicks that checkpoints and backups deliver — which are no-ops
	// without a loop to wake.
	Interval time.Duration
	// ArchiveProfile is the simulated I/O cost model for the archive
	// device. Zero charges nothing.
	ArchiveProfile iosim.Profile
	// RetryAttempts bounds archive I/O retries (writes per archiver step,
	// reads per chain-replay access) before the fault is surfaced:
	// a write fault pauses recycling until the device recovers, a read
	// fault fails the page repair that needed the record (default 5).
	// RetryBackoff is the initial backoff, doubling per attempt (default
	// 200µs for writes, 100µs for reads).
	RetryAttempts int
	RetryBackoff  time.Duration
	// Logf receives the graceful-degradation log lines (archive
	// unavailable / recovered). Nil is silent.
	Logf func(format string, args ...any)
}

// MaintenanceOptions tunes the background maintenance service. The zero
// value of every field but Enabled selects a sensible default (see
// maintenance.Config).
type MaintenanceOptions struct {
	// Enabled starts the service when the database opens.
	Enabled bool
	// FlushWorkers is the number of background flusher goroutines
	// (default 1).
	FlushWorkers int
	// FlushBatchPages caps pages per flush batch — and PRI update records
	// per grouped WAL append (default 64).
	FlushBatchPages int
	// FlushInterval is the age trigger: all dirty pages are written back
	// at least this often (default 25ms).
	FlushInterval time.Duration
	// DirtyHighWatermark is the dirty fraction of the pool that kicks the
	// flushers immediately (default 0.25).
	DirtyHighWatermark float64
	// ScrubPagesPerSecond rate-limits the scrub campaign (default 2000;
	// negative disables scrubbing while keeping write-back on). The
	// effective rate adapts: it halves while the pool's dirty count is
	// above the flushers' high watermark and restores when pressure
	// clears (see maintenance.Stats.EffectiveScrubRate).
	ScrubPagesPerSecond int
	// ScrubBatchPages is how many device slots one scrub tick examines
	// (default 64).
	ScrubBatchPages int
}

// RestoreOptions tunes the repair scheduler (internal/restore). The zero
// value selects the defaults noted on each field.
type RestoreOptions struct {
	// Disabled turns the scheduler off; every repair then runs inline on
	// the path that detected the failure (the pre-scheduler behavior:
	// concurrent faulters of one page each replay its chain, and a bulk
	// media restore is synchronous).
	Disabled bool
	// Workers is the number of repair worker goroutines (default 2).
	Workers int
	// RetryBackoff is the initial backoff before retrying a repair that
	// found its page pinned by concurrent readers; it doubles per attempt
	// up to a 50ms cap (default 1ms). The page is requeued, never
	// dropped.
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.DataSlots == 0 {
		o.DataSlots = 65536
	}
	if o.BackupSlots == 0 {
		o.BackupSlots = 2 * o.DataSlots
	}
	if o.PoolFrames == 0 {
		o.PoolFrames = 1024
	}
	return o
}
