package spf

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitBasic: with a commit window configured, concurrent
// commits coalesce into shared flushes and remain durable.
func TestGroupCommitBasic(t *testing.T) {
	opts := testOptions()
	opts.GroupCommitWindow = 2 * time.Millisecond
	opts.PoolFrames = 512
	db := openTestDB(t, opts)
	defer db.Close()

	const workers = 4
	const perWorker = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ix, err := db.CreateIndex(fmt.Sprintf("gc-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, ix *Index) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := db.Begin()
				if err := ix.Insert(tx, k(i), v(i)); err != nil {
					t.Errorf("worker %d insert %d: %v", w, i, err)
					return
				}
				if err := db.Commit(tx); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w, ix)
	}
	wg.Wait()

	s := db.Stats()
	if s.Log.GroupCommitWaiters == 0 {
		t.Error("no commits went through the group path")
	}
	if s.Log.GroupCommitBatches > s.Log.GroupCommitWaiters {
		t.Errorf("batches %d > waiters %d", s.Log.GroupCommitBatches, s.Log.GroupCommitWaiters)
	}
	for w := 0; w < workers; w++ {
		ix, err := db.Index(fmt.Sprintf("gc-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		expectValues(t, ix, perWorker)
	}
}

// TestGroupCommitDurabilityAcrossCrash is the commit-durability ordering
// stress: workers commit under group commit while the main goroutine
// crashes the database mid-flight. Every transaction whose Commit returned
// nil must be replayed by restart; transactions that reported
// ErrCommitLost (or any error) may or may not survive.
func TestGroupCommitDurabilityAcrossCrash(t *testing.T) {
	opts := testOptions()
	opts.GroupCommitWindow = 200 * time.Microsecond
	// Ample frames: no eviction pressure, so no write-back hooks race the
	// crash (a real system's crash kills its threads; simulated zombies
	// must not keep flushing pages).
	opts.PoolFrames = 4096
	opts.DataSlots = 16384
	db := openTestDB(t, opts)

	const workers = 4
	type committed struct {
		worker, seq int
	}
	var mu sync.Mutex
	durable := make(map[committed]bool)
	var stop atomic.Bool
	var wg sync.WaitGroup

	names := make([]string, workers)
	for w := 0; w < workers; w++ {
		names[w] = fmt.Sprintf("stress-%d", w)
		if _, err := db.CreateIndex(names[w]); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ix, err := db.Index(names[w])
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			for seq := 0; !stop.Load(); seq++ {
				tx := db.Begin()
				if err := ix.Insert(tx, k(seq), v(seq)); err != nil {
					// Crash-time failures are expected; the txn is a loser.
					return
				}
				if err := db.Commit(tx); err != nil {
					if errors.Is(err, ErrCommitLost) || errors.Is(err, ErrCrashed) {
						return
					}
					t.Errorf("worker %d commit %d: %v", w, seq, err)
					return
				}
				mu.Lock()
				durable[committed{w, seq}] = true
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(25 * time.Millisecond)
	db.Crash()
	stop.Store(true)
	wg.Wait()

	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ndb.Close()
	if len(durable) == 0 {
		t.Fatal("no transaction committed before the crash; stress produced nothing to verify")
	}
	for c := range durable {
		ix, err := ndb.Index(names[c.worker])
		if err != nil {
			t.Fatalf("index %s lost: %v", names[c.worker], err)
		}
		got, err := ix.Get(k(c.seq))
		if err != nil {
			t.Errorf("durably committed key %d/%d missing after restart: %v", c.worker, c.seq, err)
			continue
		}
		if string(got) != string(v(c.seq)) {
			t.Errorf("key %d/%d = %q after restart", c.worker, c.seq, got)
		}
	}
}

// TestCommitAcrossCrashReportsLost: a transaction spanning a crash must
// not claim durability.
func TestCommitAcrossCrashReportsLost(t *testing.T) {
	db := openTestDB(t, testOptions())
	ix, err := db.CreateIndex("span")
	if err != nil {
		t.Fatal(err)
	}
	// Make the index creation durable; only the transaction below spans
	// the crash.
	db.LogManager().FlushAll()
	tx := db.Begin()
	if err := ix.Insert(tx, k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if err := db.Commit(tx); err == nil {
		t.Fatal("commit spanning a crash returned nil; its updates vanished with the tail")
	}
	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ndb.Close()
	ix2, err := ndb.Index("span")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.Get(k(1)); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("uncommitted insert visible after restart: %v", err)
	}
}
