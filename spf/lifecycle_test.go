package spf

import (
	"strings"
	"testing"
)

// lifecycleOptions returns engine options with the log lifecycle on in
// deterministic (manual-step) mode and a tiny run granularity, so short
// tests cross the live/archive boundary many times.
func lifecycleOptions() Options {
	opts := testOptions()
	opts.Lifecycle = LifecycleOptions{
		Enabled:      true,
		SegmentBytes: 4 << 10,
		Interval:     -1, // ArchiveNow only
	}
	return opts
}

// churn rewrites every key round times, checkpointing after each round so
// the redo horizon keeps advancing past the rewritten history.
func churn(t *testing.T, db *DB, ix *Index, n, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		tx := db.Begin()
		for i := 0; i < n; i++ {
			if err := ix.Update(tx, k(i), v(i)); err != nil {
				t.Fatalf("round %d update %d: %v", r, i, err)
			}
		}
		if err := db.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
}

// longestChainPage picks the data page with the longest per-page chain —
// the page whose repair replays the most history.
func longestChainPage(t *testing.T, db *DB) PageID {
	t.Helper()
	var victim PageID
	var best int64
	for _, id := range db.Pages() {
		if ci, ok := db.LogManager().ChainHead(id); ok && ci.Length > best {
			victim, best = id, ci.Length
		}
	}
	if best == 0 {
		t.Fatal("no page has a chain")
	}
	return victim
}

// corruptAndVerify damages the victim's stored image and then reads every
// key back: the read path must detect the single-page failure and repair
// it (from backup plus per-page chain, wherever that chain now lives).
func corruptAndVerify(t *testing.T, db *DB, ix *Index, victim PageID, n int) {
	t.Helper()
	if err := db.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	expectValues(t, ix, n)
}

// TestLifecycleRepairAcrossTruncationBoundary is the tentpole invariant:
// a page whose chain spans recycled segments repairs identically before
// and after truncation, including through a transient archive fault.
func TestLifecycleRepairAcrossTruncationBoundary(t *testing.T) {
	const n = 300
	db := openTestDB(t, lifecycleOptions())
	defer db.Close()
	ix := loadIndex(t, db, "t", n)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	churn(t, db, ix, n, 6)

	victim := longestChainPage(t, db)
	// Before truncation: the whole chain is live.
	corruptAndVerify(t, db, ix, victim, n)

	// Archive and recycle. The chain now spans the boundary (its tail is
	// archived; the repair's own recovery records are new live history).
	if err := db.ArchiveNow(); err != nil {
		t.Fatal(err)
	}
	logStats := db.LogManager().Stats()
	if logStats.TruncatedLSN == 0 {
		t.Fatal("lifecycle step did not truncate the live log")
	}
	as := db.Metrics().Archive
	if as.Runs == 0 || as.RecordsArchived == 0 {
		t.Fatalf("no archive runs written: %+v", as)
	}

	// After truncation: same corruption, same repair, served partly from
	// the archive.
	corruptAndVerify(t, db, ix, victim, n)
	if got := db.LogManager().Stats().ArchiveReads; got == 0 {
		t.Error("post-truncation repair read nothing from the archive")
	}

	// Transient archive read fault: the retrying reader absorbs it.
	db.Archive().FailReads(2)
	corruptAndVerify(t, db, ix, victim, n)
	if got := db.Metrics().Archive.Retries; got == 0 {
		t.Error("transient archive fault was not retried")
	}
}

// TestLifecycleSurvivesCrashRestart crashes after truncation and verifies
// restart analysis, acked commits, and post-restart boundary repairs.
func TestLifecycleSurvivesCrashRestart(t *testing.T) {
	const n = 200
	db := openTestDB(t, lifecycleOptions())
	ix := loadIndex(t, db, "t", n)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	churn(t, db, ix, n, 4)
	if err := db.ArchiveNow(); err != nil {
		t.Fatal(err)
	}
	if db.LogManager().Stats().TruncatedLSN == 0 {
		t.Fatal("no truncation before crash")
	}
	// Acked history after the truncation, then crash with it unflushed in
	// part: restart must recover every acked commit from master-forward
	// live log — analysis never needs recycled history.
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if err := ix.Update(tx, k(i), []byte("post-truncate")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("restart over a truncated log: %v", err)
	}
	defer ndb.Close()
	nix, err := ndb.Index("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := nix.Get(k(i))
		if err != nil {
			t.Fatalf("get %d after restart: %v", i, err)
		}
		if string(got) != "post-truncate" {
			t.Fatalf("key %d = %q after restart, want acked value", i, got)
		}
	}
	// The inherited archive still serves the recovered DB's repairs.
	victim := longestChainPage(t, ndb)
	if err := ndb.EvictPage(victim); err != nil {
		t.Fatal(err)
	}
	if err := ndb.CorruptPage(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := nix.Get(k(i)); err != nil {
			t.Fatalf("post-restart repair: get %d: %v", i, err)
		}
	}
}

// TestLifecycleReleasesArchivedHistory drives the full pipeline — archive,
// recycle, back up, release — and checks the archive is itself bounded.
func TestLifecycleReleasesArchivedHistory(t *testing.T) {
	const n = 200
	db := openTestDB(t, lifecycleOptions())
	defer db.Close()
	ix := loadIndex(t, db, "t", n)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	churn(t, db, ix, n, 4)
	if err := db.ArchiveNow(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Archive.Runs == 0 {
		t.Fatal("nothing archived")
	}
	// A fresh full backup set supersedes the archived chains below it; the
	// next step garbage-collects them.
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.ArchiveNow(); err != nil {
		t.Fatal(err)
	}
	as := db.Metrics().Archive
	if as.ReleasedRuns == 0 {
		t.Fatalf("no archived history released after a newer backup set: %+v", as)
	}
	if as.ReleasedLSN == 0 {
		t.Error("release horizon never advanced")
	}
	// Everything still reads clean after release, and fresh history keeps
	// repairing normally on top of the released archive.
	expectValues(t, ix, n)
	churn(t, db, ix, n, 1)
	victim := longestChainPage(t, db)
	corruptAndVerify(t, db, ix, victim, n)
}

// TestLifecyclePausesOnArchiveFault checks graceful degradation: a sticky
// archive write fault pauses recycling (the live log grows, the gauge
// says so), and recovery of the device resumes the lifecycle.
func TestLifecyclePausesOnArchiveFault(t *testing.T) {
	const n = 150
	opts := lifecycleOptions()
	var degraded, recovered bool
	opts.Lifecycle.RetryAttempts = 2
	opts.Lifecycle.Logf = func(format string, args ...any) {
		if strings.Contains(format, "unavailable") {
			degraded = true
		} else {
			recovered = true
		}
	}
	db := openTestDB(t, opts)
	defer db.Close()
	ix := loadIndex(t, db, "t", n)
	churn(t, db, ix, n, 2)

	db.Archive().FailWrites(-1)
	base := db.LogManager().TruncatedLSN()
	if err := db.ArchiveNow(); err == nil {
		t.Fatal("faulted lifecycle step reported success")
	}
	if !db.ArchivePaused() {
		t.Fatal("archiver not paused after sticky write fault")
	}
	if !db.Metrics().Archive.Paused {
		t.Error("pause gauge not surfaced in metrics")
	}
	if db.LogManager().TruncatedLSN() != base {
		t.Error("recycling advanced while archive unavailable")
	}
	if !degraded {
		t.Error("degradation log line not emitted")
	}

	// The engine keeps serving reads and writes throughout the outage.
	churn(t, db, ix, n, 1)
	expectValues(t, ix, n)

	db.Archive().FailWrites(0)
	if err := db.ArchiveNow(); err != nil {
		t.Fatalf("lifecycle step after device recovery: %v", err)
	}
	if db.ArchivePaused() {
		t.Error("archiver still paused after recovery")
	}
	if !recovered {
		t.Error("recovery log line not emitted")
	}
	if db.LogManager().TruncatedLSN() == base {
		t.Error("recycling did not resume after recovery")
	}
}
