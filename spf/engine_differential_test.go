package spf

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestEngineDifferentialModel drives both storage engines and a plain
// in-memory map through one seeded operation stream, then checks
// key-for-key agreement after the two recovery paths: crash → Restart and
// FailDevice → RecoverMedia. Any divergence — between the engines, or
// between either engine and the model — is a bug in an engine's logging,
// its redo/undo, or the shared recovery machinery; the map cannot be
// wrong. Run under -race this doubles as an engine-seam race check, since
// both engines share the pool, WAL, and restore scheduler.
func TestEngineDifferentialModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDifferential(t, seed)
		})
	}
}

// keySpace bounds the differential key universe; every key index in
// [0, keySpace) is checked explicitly after each recovery, so absence is
// verified as strictly as presence.
const keySpace = 500

func runDifferential(t *testing.T, seed int64) {
	opts := testOptions()
	opts.Seed = seed
	db := openTestDB(t, opts)
	bt, err := db.CreateIndexKind("bt", KindBTree)
	if err != nil {
		t.Fatal(err)
	}
	hx, err := db.CreateIndexKind("hx", KindHash)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Kind() != KindBTree || hx.Kind() != KindHash {
		t.Fatalf("kinds: bt=%v hx=%v", bt.Kind(), hx.Kind())
	}

	// model holds the committed truth; pending overlays it inside one
	// transaction (nil value = deleted). Every op applies to both engines
	// in the same transaction, so the two indexes always commit or roll
	// back together.
	model := make(map[string][]byte)
	rng := rand.New(rand.NewSource(seed))
	lookup := func(pending map[string][]byte, key string) ([]byte, bool) {
		if v, ok := pending[key]; ok {
			return v, v != nil
		}
		v, ok := model[key]
		return v, ok
	}
	mutate := func(rounds int) {
		t.Helper()
		for round := 0; round < rounds; round++ {
			tx := db.Begin()
			pending := make(map[string][]byte)
			for op := 0; op < 6; op++ {
				i := rng.Intn(keySpace)
				key := string(k(i))
				cur, exists := lookup(pending, key)
				switch {
				case !exists:
					val := []byte(fmt.Sprintf("v-%d-%d", seed, rng.Int63()))
					if err := bt.Insert(tx, k(i), val); err != nil {
						t.Fatalf("btree insert %q: %v", key, err)
					}
					if err := hx.Insert(tx, k(i), val); err != nil {
						t.Fatalf("hash insert %q: %v", key, err)
					}
					pending[key] = val
				case rng.Intn(4) == 0:
					if err := bt.Delete(tx, k(i)); err != nil {
						t.Fatalf("btree delete %q: %v", key, err)
					}
					if err := hx.Delete(tx, k(i)); err != nil {
						t.Fatalf("hash delete %q: %v", key, err)
					}
					pending[key] = nil
				default:
					val := append([]byte(nil), cur...)
					val = append(val, byte('a'+rng.Intn(26)))
					if err := bt.Update(tx, k(i), val); err != nil {
						t.Fatalf("btree update %q: %v", key, err)
					}
					if err := hx.Update(tx, k(i), val); err != nil {
						t.Fatalf("hash update %q: %v", key, err)
					}
					pending[key] = val
				}
			}
			// Every few rounds the transaction aborts instead: both
			// engines must roll the whole batch back and the model learns
			// nothing.
			if rng.Intn(8) == 0 {
				if err := tx.Abort(); err != nil {
					t.Fatalf("abort: %v", err)
				}
				continue
			}
			if err := db.Commit(tx); err != nil {
				t.Fatalf("commit: %v", err)
			}
			for key, val := range pending {
				if val == nil {
					delete(model, key)
				} else {
					model[key] = val
				}
			}
		}
	}

	// agree checks both engines against the model key-for-key — present
	// keys byte-equal, absent keys ErrNotFound — and that each engine's
	// full scan enumerates exactly the model's live key set.
	agree := func(db *DB, phase string) {
		t.Helper()
		bt, err := db.Index("bt")
		if err != nil {
			t.Fatal(err)
		}
		hx, err := db.Index("hx")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keySpace; i++ {
			key := string(k(i))
			want, ok := model[key]
			for _, eng := range []struct {
				name string
				ix   *Index
			}{{"btree", bt}, {"hash", hx}} {
				got, err := eng.ix.Get(k(i))
				if ok {
					if err != nil || !bytes.Equal(got, want) {
						t.Fatalf("%s: %s key %q = %q, %v; model has %q",
							phase, eng.name, key, got, err, want)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("%s: %s key %q should be absent, got %q, %v",
						phase, eng.name, key, got, err)
				}
			}
		}
		wantKeys := make([]string, 0, len(model))
		for key := range model {
			wantKeys = append(wantKeys, key)
		}
		sort.Strings(wantKeys)
		for _, eng := range []struct {
			name string
			ix   *Index
		}{{"btree", bt}, {"hash", hx}} {
			var gotKeys []string
			if err := eng.ix.Scan(nil, nil, func(e Entry) bool {
				gotKeys = append(gotKeys, string(e.Key))
				return true
			}); err != nil {
				t.Fatalf("%s: %s scan: %v", phase, eng.name, err)
			}
			sort.Strings(gotKeys)
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("%s: %s scan found %d keys, model has %d",
					phase, eng.name, len(gotKeys), len(wantKeys))
			}
			for i := range gotKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("%s: %s scan key[%d] = %q, model %q",
						phase, eng.name, i, gotKeys[i], wantKeys[i])
				}
			}
			if viols, err := eng.ix.Verify(); err != nil || len(viols) != 0 {
				t.Fatalf("%s: %s verify: %v %v", phase, eng.name, viols, err)
			}
		}
	}

	mutate(60)
	agree(db, "pre-crash")

	// Crash with dirty state in flight, then Restart: both engines'
	// committed history must replay through the shared redo path.
	db.Crash()
	ndb, _, err := db.Restart()
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ndb.DrainRestore()
	agree(ndb, "post-restart")
	db = ndb

	// Re-resolve the handles, commit more work, back the database up,
	// then more work still — so media recovery restores from the backup
	// AND replays post-backup log for both engines.
	bt, err = db.Index("bt")
	if err != nil {
		t.Fatal(err)
	}
	hx, err = db.Index("hx")
	if err != nil {
		t.Fatal(err)
	}
	mutate(20)
	if _, err := db.BackupDatabase(); err != nil {
		t.Fatal(err)
	}
	mutate(20)

	db.FailDevice()
	mdb, rep, err := db.RecoverMedia()
	if err != nil {
		t.Fatalf("recover media: %v", err)
	}
	if rep.Media.PagesRestored == 0 {
		t.Error("media recovery restored no pages")
	}
	mdb.DrainRestore()
	agree(mdb, "post-media-recovery")
	if err := mdb.Close(); err != nil {
		t.Fatal(err)
	}
}
