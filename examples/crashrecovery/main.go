// Crash recovery walkthrough: commits survive, losers roll back — and
// with instant restart the database answers its first query before bulk
// redo finishes. Restart prepares in O(active pages): every page dirty at
// the crash is marked needs-redo with its log-chain head and queued for
// background replay; a foreground read of a marked page promotes just
// that page and pays only its own chain. The output counts reads served
// while the redo backlog is still draining and fails if none were.
//
//	go run ./examples/crashrecovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/spf"
)

func main() {
	db, err := spf.Open(spf.Options{
		PageSize:   1024,
		DataSlots:  1 << 15,
		PoolFrames: 2048,
		// One background worker keeps the redo queue visibly busy so the
		// on-demand promotions have something to overtake.
		Restore: spf.RestoreOptions{Workers: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	acct, err := db.CreateIndex("accounts")
	if err != nil {
		log.Fatal(err)
	}

	// Committed, checkpointed state: n accounts.
	const n = 4000
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if err := acct.Insert(tx, key(i), val(i, 0)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Post-checkpoint update rounds dirty every page again without a
	// write-back: at the crash the whole tree sits in the dirty page
	// table, so restart has a real redo backlog.
	const rounds = 2
	for r := 1; r <= rounds; r++ {
		tx := db.Begin()
		for i := 0; i < n; i++ {
			if err := acct.Update(tx, key(i), val(i, r)); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Commit(tx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d accounts committed across %d pages, all dirty since the checkpoint\n",
		n, db.PageMapLen())

	// A committed transfer (must survive) ...
	transfer := db.Begin()
	if err := acct.Update(transfer, key(1), []byte("balance=50")); err != nil {
		log.Fatal(err)
	}
	if err := acct.Update(transfer, key(2), []byte("balance=150")); err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(transfer); err != nil {
		log.Fatal(err)
	}
	// ... and an in-flight batch (must vanish). Forcing the log — not the
	// pages — makes the loser's records survive the crash so undo has
	// real work, while the data pages stay dirty for redo.
	loser := db.Begin()
	for i := 0; i < 100; i++ {
		if err := acct.Update(loser, key(i+200), []byte("balance=0")); err != nil {
			log.Fatal(err)
		}
	}
	db.LogManager().FlushAll()
	fmt.Println("committed transfer + 100-update loser in flight; pulling the plug")

	db.Crash()
	prepStart := time.Now()
	ndb, rep, err := db.Restart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Restart returned in %v: %d records analyzed, %d pages marked needs-redo (≤%d chain records queued), %d losers rolled back\n",
		time.Since(prepStart).Round(time.Microsecond), rep.Analysis.RecordsScanned,
		rep.Prep.PagesMarked, rep.Prep.ChainRecords, rep.Undo.LosersRolledBack)
	if !rep.OnDemand {
		log.Fatal("restart did not take the on-demand path")
	}

	acct2, err := ndb.Index("accounts")
	if err != nil {
		log.Fatal(err)
	}

	// First reads run ahead of the background drain: each one promotes
	// its own page's redo and waits only for that page's chain replay.
	served := 0
	drainStart := time.Now()
	for i := 0; i < n; i += 199 {
		readStart := time.Now()
		got, err := acct2.Get(key(i))
		if err != nil {
			log.Fatal(err)
		}
		want := val(i, rounds)
		if i == 1 {
			want = []byte("balance=50")
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("key %d after restart: got %q, want %q", i, got, want)
		}
		pending := ndb.RestoreStats().Pending
		if pending > 0 {
			served++
		}
		if i%796 == 0 {
			fmt.Printf("  read key %4d in %8v — %3d pages still pending redo\n",
				i, time.Since(readStart).Round(time.Microsecond), pending)
		}
	}

	ndb.DrainRestore()
	fmt.Printf("bulk redo drained in %v; %d reads had completed before it did\n",
		time.Since(drainStart).Round(time.Millisecond), served)
	rs := ndb.RestartRedoStats()
	fmt.Printf("redo: %d pages marked, %d replayed from their disk image, %d fell back to single-page recovery\n",
		rs.Marked, rs.FastRedos, rs.Fallbacks)

	// Durability + atomicity, same checks as ever.
	check(acct2, key(1), "balance=50")          // committed transfer survived
	check(acct2, key(2), "balance=150")         // committed transfer survived
	check(acct2, key(250), string(val(250, 2))) // loser rolled back
	viols, err := acct2.Verify()
	if err != nil || len(viols) != 0 {
		log.Fatalf("verify: %v %v", viols, err)
	}
	fmt.Println("durability + atomicity verified after crash")
	if served == 0 {
		log.Fatal("no read completed before bulk redo drained — instant restart shape not demonstrated")
	}
	if err := ndb.Close(); err != nil {
		log.Fatal(err)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("acct%08d", i)) }

func val(i, round int) []byte {
	return []byte(fmt.Sprintf("balance-%d-round-%d", i*3, round))
}

func check(ix *spf.Index, k []byte, want string) {
	v, err := ix.Get(k)
	if err != nil || string(v) != want {
		log.Fatalf("check %s: got %q (%v), want %q", k, v, err, want)
	}
}
