// Crash recovery walkthrough: commits survive, losers roll back, and PRI
// updates lost in the crash window are repaired during redo (Fig. 12).
//
//	go run ./examples/crashrecovery
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/spf"
)

func main() {
	db, err := spf.Open(spf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	acct, err := db.CreateIndex("accounts")
	if err != nil {
		log.Fatal(err)
	}

	// Committed state: 500 accounts.
	tx := db.Begin()
	for i := 0; i < 500; i++ {
		if err := acct.Insert(tx, key(i), []byte("balance=100")); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("500 accounts committed and checkpointed")

	// A committed transfer (must survive) ...
	transfer := db.Begin()
	if err := acct.Update(transfer, key(1), []byte("balance=50")); err != nil {
		log.Fatal(err)
	}
	if err := acct.Update(transfer, key(2), []byte("balance=150")); err != nil {
		log.Fatal(err)
	}
	if err := db.Commit(transfer); err != nil {
		log.Fatal(err)
	}
	// ... and an in-flight batch (must vanish).
	loser := db.Begin()
	for i := 0; i < 100; i++ {
		if err := acct.Update(loser, key(i+200), []byte("balance=0")); err != nil {
			log.Fatal(err)
		}
	}
	// Let dirty pages reach the device so the loser's effects are truly
	// on "disk" when the lights go out.
	if err := db.FlushAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed transfer + 100-update loser in flight; pulling the plug")

	db.Crash()
	ndb, rep, err := db.Restart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart: %d records analyzed, %d pages re-read in redo, %d redo records, %d lost PRI updates repaired, %d losers rolled back (%v)\n",
		rep.Analysis.RecordsScanned, rep.Redo.PagesRead, rep.Redo.RecordsApplied,
		rep.Redo.PRIRepairs, rep.Undo.LosersRolledBack, rep.Duration)

	acct2, err := ndb.Index("accounts")
	if err != nil {
		log.Fatal(err)
	}
	check(acct2, key(1), "balance=50")    // committed transfer survived
	check(acct2, key(2), "balance=150")   // committed transfer survived
	check(acct2, key(250), "balance=100") // loser rolled back
	fmt.Println("durability + atomicity verified after crash")

	// Bonus: media failure with full recovery from backup.
	if _, err := ndb.BackupDatabase(); err != nil {
		log.Fatal(err)
	}
	post := ndb.Begin()
	if err := acct2.Update(post, key(3), []byte("balance=7")); err != nil {
		log.Fatal(err)
	}
	if err := ndb.Commit(post); err != nil {
		log.Fatal(err)
	}
	ndb.FailDevice()
	if _, err := acct2.Get(key(1)); !errors.Is(err, spf.ErrCrashed) {
		fmt.Println("note: reads fail while device is down")
	}
	mdb, mrep, err := ndb.RecoverMedia()
	if err != nil {
		log.Fatal(err)
	}
	acct3, err := mdb.Index("accounts")
	if err != nil {
		log.Fatal(err)
	}
	check(acct3, key(3), "balance=7") // post-backup commit replayed on demand
	mdb.DrainRestore()                // wait for the background bulk restore
	fmt.Printf("media recovery: %d pages registered for instant restore (≤%d chain records), prepared in %v\n",
		mrep.Media.PagesRestored, mrep.Media.ChainRecords, mrep.Duration)
}

func key(i int) []byte { return []byte(fmt.Sprintf("acct%05d", i)) }

func check(ix *spf.Index, k []byte, want string) {
	v, err := ix.Get(k)
	if err != nil || string(v) != want {
		log.Fatalf("check %s: got %q (%v), want %q", k, v, err, want)
	}
}
