// Backup policy tuning: §6 of the paper suggests taking a page backup
// "after a number of updates" so single-page recovery stays fast. This
// example sweeps the interval on a hot-page workload and reports the
// recovery-time / backup-space trade-off.
//
//	go run ./examples/backuppolicy
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/iosim"
	"repro/internal/report"
	"repro/spf"
)

func main() {
	const hotUpdates = 400
	intervals := []int{0, 10, 25, 100, 200}

	t := report.NewTable("backup-every-N-updates policy on a hot page",
		"interval N", "chain replayed at recovery", "sim recovery time (HDD)")
	for _, n := range intervals {
		replayed, simTime := runOne(n, hotUpdates)
		label := fmt.Sprintf("%d", n)
		if n == 0 {
			label = "off"
		}
		t.Row(label, replayed, simTime)
	}
	t.Caption = fmt.Sprintf("%d updates hammered one page before the failure", hotUpdates)
	fmt.Print(t.String())
	fmt.Println("shape: recovery work == updates since last backup (§6);")
	fmt.Println("pick N so 'dozens of I/Os' holds even for the hottest pages.")
}

func runOne(interval, updates int) (int, time.Duration) {
	opts := spf.Options{
		PageSize:            4096,
		BackupEveryNUpdates: interval,
		DataProfile:         iosim.HDD,
		LogProfile:          iosim.HDD,
		BackupProfile:       iosim.HDD,
	}
	db, err := spf.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := db.CreateIndex("hot")
	if err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 16; i++ {
		if err := ix.Insert(tx, key(i), []byte("cold")); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		log.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		log.Fatal(err)
	}
	victim := findVictim(db, ix, key(8))
	if err := db.BackupPage(victim); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < updates; i++ {
		tx := db.Begin()
		if err := ix.Update(tx, key(8), []byte(fmt.Sprintf("hot-%05d", i))); err != nil {
			log.Fatal(err)
		}
		if err := db.Commit(tx); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.EvictPage(victim); err != nil {
		log.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		log.Fatal(err)
	}
	rep, err := db.RecoverPageNow(victim)
	if err != nil {
		log.Fatal(err)
	}
	// Confirm correctness after recovery.
	v, err := ix.Get(key(8))
	if err != nil || string(v) != fmt.Sprintf("hot-%05d", updates-1) {
		log.Fatalf("recovered wrong value %q, %v", v, err)
	}
	return rep.RecordsApplied, rep.SimulatedIO
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }

func findVictim(db *spf.DB, ix *spf.Index, k []byte) spf.PageID {
	var root spf.PageID
	for _, id := range db.Pages() {
		h, err := db.Fetch(id)
		if err != nil {
			continue
		}
		h.RLock()
		hit := h.Page().Type().String() == "btree" && contains(h.Page().Payload(), k)
		h.RUnlock()
		h.Release()
		if hit {
			if id != ix.Root() {
				return id
			}
			root = id
		}
	}
	if root != 0 {
		return root // tiny tree: the root leaf holds everything
	}
	log.Fatal("victim not found")
	return 0
}

func contains(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if string(haystack[i:i+len(needle)]) == string(needle) {
			return true
		}
	}
	return false
}
