// Instant restore: media recovery that serves reads while it runs.
//
// The paper's media recovery (§5.1.3) is a bulk offline process — restore
// every page from the full backup, replay the whole log, and only then
// answer the first query. This demo shows the engine's instant-restore
// shape (after Sauer, Graefe & Härder): RecoverMedia prepares the page
// map and page recovery index in O(pages) and returns immediately; every
// page is queued for background repair, and a foreground read of a page
// that is not back yet PROMOTES that one page's repair and waits only for
// its own chain replay. The output shows reads completing while the bulk
// restore still has most of the device pending.
//
//	go run ./examples/instantrestore
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/spf"
)

func main() {
	db, err := spf.Open(spf.Options{
		PageSize:   1024,
		DataSlots:  1 << 15,
		PoolFrames: 2048,
		// One background worker keeps the restore queue visibly busy so
		// the on-demand promotions have something to overtake.
		Restore: spf.RestoreOptions{Workers: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := db.CreateIndex("accounts")
	if err != nil {
		log.Fatal(err)
	}
	const n = 5000
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if err := accounts.Insert(tx, key(i), val(i, 0)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		log.Fatal(err)
	}

	// A full backup, then more committed work: the post-backup updates
	// exist only in the log and must be replayed per page at restore.
	if _, err := db.BackupDatabase(); err != nil {
		log.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		tx := db.Begin()
		for i := 0; i < n; i++ {
			if err := accounts.Update(tx, key(i), val(i, round)); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Commit(tx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d keys across %d pages, full backup + 3 post-backup update rounds\n",
		n, db.PageMapLen())

	// The whole device fails.
	db.FailDevice()
	fmt.Println("device failed — every page gone")

	// Instant restore: RecoverMedia returns a usable database while the
	// bulk of the device is still queued for background repair.
	prepStart := time.Now()
	ndb, rep, err := db.RecoverMedia()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RecoverMedia returned in %v: %d pages registered (%d born after the backup, ≤%d chain records to replay)\n",
		time.Since(prepStart).Round(time.Microsecond),
		rep.Media.PagesRestored, rep.Media.LateBornPages, rep.Media.ChainRecords)

	accounts, err = ndb.Index("accounts")
	if err != nil {
		log.Fatal(err)
	}

	// Reads are served on demand, ahead of the background bulk restore.
	served := 0
	restoreStart := time.Now()
	for i := 0; i < n; i += 251 {
		readStart := time.Now()
		got, err := accounts.Get(key(i))
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, val(i, 3)) {
			log.Fatalf("key %d: got %q, want round-3 value", i, got)
		}
		pending := ndb.RestoreStats().Pending
		if pending > 0 {
			served++
		}
		if i%1004 == 0 {
			fmt.Printf("  read key %4d in %8v — %3d pages still pending restore\n",
				i, time.Since(readStart).Round(time.Microsecond), pending)
		}
	}

	ndb.DrainRestore()
	fmt.Printf("bulk restore finished in %v; %d reads had completed before it did\n",
		time.Since(restoreStart).Round(time.Millisecond), served)

	st := ndb.RestoreStats()
	fmt.Printf("scheduler: %d repairs, %d urgent requests, %d promotions, %d coalesced waits\n",
		st.Repaired, st.UrgentRequests, st.Promotions, st.Coalesced)

	// Everything is back and verifiably intact.
	for i := 0; i < n; i++ {
		got, err := accounts.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i, 3)) {
			log.Fatalf("key %d after restore: %q, %v", i, got, err)
		}
	}
	viols, err := accounts.Verify()
	if err != nil || len(viols) != 0 {
		log.Fatalf("verify: %v %v", viols, err)
	}
	fmt.Printf("all %d keys verified after instant restore\n", n)
	if served == 0 {
		log.Fatal("no read completed before the bulk restore drained — instant restore shape not demonstrated")
	}
	if err := ndb.Close(); err != nil {
		log.Fatal(err)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("acct%08d", i)) }

func val(i, round int) []byte {
	return []byte(fmt.Sprintf("balance-%d-round-%d", i*7, round))
}
