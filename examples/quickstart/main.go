// Quickstart: open a database, create an index, run transactions, corrupt
// a page behind the engine's back, and watch a read repair it in place.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/spf"
)

func main() {
	db, err := spf.Open(spf.Options{})
	if err != nil {
		log.Fatal(err)
	}

	users, err := db.CreateIndex("users")
	if err != nil {
		log.Fatal(err)
	}

	// A user transaction: inserts commit atomically.
	tx := db.Begin()
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("user%04d", i)
		v := fmt.Sprintf("{\"name\":\"u%d\",\"credits\":%d}", i, i*10)
		if err := users.Insert(tx, []byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("inserted 1000 users in one transaction")

	// Aborted transactions leave no trace.
	tx2 := db.Begin()
	if err := users.Update(tx2, []byte("user0007"), []byte("corrupted-on-purpose")); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		log.Fatal(err)
	}
	v, err := users.Get([]byte("user0007"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after abort, user0007 = %s\n", v)

	// Now the paper's scenario: a page on "disk" silently rots.
	if err := db.FlushAll(); err != nil {
		log.Fatal(err)
	}
	// Find the page holding user0500 and corrupt its stored image.
	var victim spf.PageID
	for id := spf.PageID(1); id < 200; id++ {
		h, err := db.Fetch(id)
		if err != nil {
			continue
		}
		h.RLock()
		hit := h.Page().Type().String() == "btree" &&
			containsBytes(h.Page().Payload(), []byte("user0500")) &&
			id != users.Root()
		h.RUnlock()
		h.Release()
		if hit {
			victim = id
			break
		}
	}
	if victim == 0 {
		log.Fatal("victim page not found")
	}
	if err := db.EvictPage(victim); err != nil {
		log.Fatal(err)
	}
	if err := db.CorruptPage(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("silently corrupted the stored image of page %d\n", victim)

	// The next read detects the failure, walks the per-page log chain
	// from the page's format record, rebuilds the page, relocates it,
	// and serves the correct answer — no transaction aborted.
	v2, err := users.Get([]byte("user0500"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read through single-page recovery: user0500 = %s\n", v2)

	st := db.Stats()
	fmt.Printf("recoveries=%d escalations=%d retired-slots=%d pri-ranges=%d (%d bytes for %d pages)\n",
		st.Recovery.Recoveries, st.Recovery.Escalations, st.Retired,
		st.PRIRanges, st.PRIBytes, st.DBPages)

	if viols, err := users.Verify(); err != nil || len(viols) > 0 {
		log.Fatalf("verification failed: %v %v", viols, err)
	}
	fmt.Println("full structural verification: clean")
}

func containsBytes(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if string(haystack[i:i+len(needle)]) == string(needle) {
			return true
		}
	}
	return false
}
