// Latent sector errors: reproduces the field conditions the paper cites
// (Bairavasundaram et al.): a campaign of latent errors across the device,
// discovered partly by normal reads and partly by background scrubbing,
// every one repaired by single-page recovery without aborting anything.
//
//	go run ./examples/latenterrors
package main

import (
	"fmt"
	"log"

	"repro/internal/storage"
	"repro/spf"
)

func main() {
	db, err := spf.Open(spf.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	items, err := db.CreateIndex("items")
	if err != nil {
		log.Fatal(err)
	}
	tx := db.Begin()
	const n = 20000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("item%08d", i))
		v := []byte(fmt.Sprintf("payload-%d", i))
		if err := items.Insert(tx, k, v); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Commit(tx); err != nil {
		log.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database loaded: %d keys across %d pages\n", n, db.PageMapLen())

	// The campaign: ~1% of slots develop latent errors with spatial
	// clustering, mixing unreadable sectors and silent corruption — the
	// distribution the SIGMETRICS study reports.
	read := storage.Campaign{Rate: 0.005, ClusterSize: 4,
		Kind: storage.FaultReadError, Sticky: true, Seed: 7}
	silent := storage.Campaign{Rate: 0.005, ClusterSize: 4,
		Kind: storage.FaultSilentCorruption, Sticky: true, Seed: 8}
	hit1 := read.Apply(db.Device())
	hit2 := silent.Apply(db.Device())
	fmt.Printf("campaign: %d slots with latent read errors, %d with silent corruption\n",
		len(hit1), len(hit2))

	// Foreground traffic discovers some of the damage organically.
	misreads := 0
	for i := 0; i < n; i += 3 {
		k := []byte(fmt.Sprintf("item%08d", i))
		v, err := items.Get(k)
		if err != nil {
			log.Fatalf("read of %s failed despite recovery: %v", k, err)
		}
		if string(v) != fmt.Sprintf("payload-%d", i) {
			misreads++
		}
	}
	st := db.Stats()
	fmt.Printf("foreground reads: 0 aborted, %d wrong answers, %d pages repaired on access\n",
		misreads, st.Recovery.Recoveries)

	// Background scrubbing mops up the cold damage.
	scrub, err := db.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub: %d slots scanned, %d bad, %d repaired, %d escalated\n",
		scrub.Scanned, scrub.BadSlots, scrub.Recovered, scrub.Escalated)

	// Prove the database is fully intact.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("item%08d", i))
		v, err := items.Get(k)
		if err != nil || string(v) != fmt.Sprintf("payload-%d", i) {
			log.Fatalf("post-repair check failed for %s: %q %v", k, v, err)
		}
	}
	if viols, err := items.Verify(); err != nil || len(viols) > 0 {
		log.Fatalf("verification: %v %v", viols, err)
	}
	final := db.Stats()
	fmt.Printf("final: %d single-page recoveries, %d retired slots, all %d keys verified intact\n",
		final.Recovery.Recoveries, final.Retired, n)
}
